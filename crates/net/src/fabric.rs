//! The mesh fabric: routing, link occupancy and in-order delivery.
//!
//! Since the engine unification there is exactly **one** delivery source:
//! [`FabricShard`]. It carries a packet through three steps —
//!
//! 1. [`FabricShard::inject`] — routing latency; stamps `link_ready`,
//! 2. staging ([`FabricShard::stage`]) — the packet waits in a
//!    deterministic merge queue keyed `(link_ready, tag)`, the tag being
//!    the §7 priority class bit over the transfer ID,
//! 3. [`FabricShard::commit_next`] — pops the earliest staged packet and
//!    serializes it on the destination's inbound link, yielding its
//!    arrival instant.
//!
//! [`Interconnect`] is a thin wrapper over one full-machine shard: the
//! serial driver is the degenerate one-shard instantiation, and the
//! parallel engine splits the same state into per-shard copies with
//! [`Interconnect::split`] / [`Interconnect::merge`]. Both drain packets
//! through the same `commit_next` — there is no second delivery loop.

use shrimp_sim::{Counter, MergeQueue, SimDuration, SimTime, StatSet, XferId};

use crate::{NodeId, Packet};

/// A contiguous run of `count` same-shape packets: one template plus a
/// constant inter-member time stride. Member `i` (0-based) is the template
/// with every timestamp shifted by `stride × i` and the transfer sequence
/// number advanced by `i` — exactly the packets a steady-state message
/// train would have produced one at a time, folded into one descriptor
/// (the §7 gather-descriptor idea applied to the simulator's own hot
/// path). The payload is stored once; deliveries reuse it per member.
#[derive(Debug)]
pub struct PacketRun {
    /// Member 0 of the run, carrying the shared payload and destination.
    pub template: Packet,
    /// Members remaining in the run (≥ 1 when staged).
    pub count: u32,
    /// Inter-member stride in nanoseconds. Fits `u32` by construction:
    /// runs are only minted for strides under ~4.3 ms, far above any
    /// per-message cost the model produces.
    pub stride_ns: u32,
}

impl PacketRun {
    /// The inter-member stride as a duration.
    pub fn stride(&self) -> SimDuration {
        SimDuration::from_nanos(u64::from(self.stride_ns))
    }

    /// The staged-queue key `(link_ready, tag)` of member `i`, with the
    /// template's [`crate::PacketClass`] encoded in the tag: the delta
    /// encoding means the whole run's ordering is two integer adds per
    /// member, never a re-derivation of routing latency.
    pub fn member_key(&self, i: u32) -> (SimTime, u64) {
        (
            self.template.meta.link_ready + self.stride() * u64::from(i),
            self.template.merge_tag() + u64::from(i),
        )
    }

    /// Advances the template past the first `consumed` members: every
    /// timestamp shifts by `stride × consumed` and the sequence number
    /// advances, so the remainder is itself a well-formed run.
    pub fn advance(&mut self, consumed: u32) {
        debug_assert!(consumed < self.count, "cannot advance past the end of a run");
        let shift = self.stride() * u64::from(consumed);
        self.template.sent_at += shift;
        let m = &mut self.template.meta;
        m.id = XferId::new(m.id.node(), m.id.seq() + u64::from(consumed));
        m.initiated_at += shift;
        m.queued_at += shift;
        m.link_ready += shift;
        m.status_observed += shift;
        self.count -= consumed;
    }
}

/// One staged entry: a single packet or a whole run. The queue key of a
/// run is its first member's key; later members stay ordered because the
/// commit loop splits a run the moment another staged entry **for the
/// same destination** would sort between its members (traffic bound
/// elsewhere cannot observe the interleaving — see
/// [`FabricShard::commit_next`]).
#[derive(Debug)]
pub enum Staged {
    /// A single packet.
    One(Packet),
    /// A contiguous run of packets sharing one payload and stride.
    Run(PacketRun),
}

/// One committed unit popped from the staged queue.
#[derive(Debug)]
pub enum Commit {
    /// A single packet, already serialized on its destination link.
    One {
        /// When the packet reached the destination's inbound link.
        link_ready: SimTime,
        /// When it finished serializing on that link.
        arrival: SimTime,
        /// The packet itself.
        packet: Packet,
    },
    /// The leading `take` members of a run are committed; the caller
    /// delivers them (admitting each on the link via
    /// [`FabricShard::admit`]) and hands any remainder back through
    /// [`FabricShard::restage_run_tail`] — the payload is never cloned.
    Run {
        /// When member 0 reached the destination's inbound link.
        link_ready: SimTime,
        /// The full run; members `0..take` are committed.
        run: PacketRun,
        /// How many leading members commit now (≥ 1).
        take: u32,
    },
}

/// Link and router parameters.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct LinkParams {
    /// Per-hop router latency.
    pub hop_latency: SimDuration,
    /// Link bandwidth, MB/s (Paragon backplane links: far faster than the
    /// node's EISA bus, keeping the sender the bottleneck).
    pub mb_per_s: f64,
}

impl Default for LinkParams {
    fn default() -> Self {
        LinkParams { hop_latency: SimDuration::from_us(0.5), mb_per_s: 175.0 }
    }
}

/// Columns of the near-square grid holding `nodes` nodes: the integer
/// ceiling square root (smallest `c` with `c * c >= nodes`), computed
/// without an `f64` round-trip.
fn grid_cols(nodes: u16) -> u16 {
    let mut c: u16 = 1;
    while u32::from(c) * u32::from(c) < u32::from(nodes) {
        c += 1;
    }
    c
}

/// A 2-D mesh interconnect with dimension-order routing distances.
///
/// Nodes are arranged on a near-square grid. A packet's latency is
/// `hops × hop_latency + wire_bytes / bandwidth`, serialized on the
/// destination's inbound link, which preserves point-to-point ordering —
/// the property SHRIMP's deliberate update relies on.
///
/// `Interconnect` owns a single [`FabricShard`] covering the whole
/// machine; every delivery — serial or parallel — goes through the
/// shard's staged queue and [`FabricShard::commit_next`].
#[derive(Debug)]
pub struct Interconnect {
    shard: FabricShard,
}

impl Interconnect {
    /// A fabric connecting `nodes` nodes.
    ///
    /// # Panics
    ///
    /// Panics if `nodes` is zero.
    pub fn new(nodes: u16, params: LinkParams) -> Self {
        assert!(nodes > 0, "a fabric needs at least one node");
        let cols = grid_cols(nodes);
        Interconnect {
            shard: FabricShard {
                nodes,
                cols,
                params,
                links: vec![LinkState::IDLE; nodes as usize],
                staged: MergeQueue::new(),
                dst_keys: DstIndex::new(nodes),
                packets: Counter::new(),
                payload_bytes: Counter::new(),
                drops: Counter::new(),
            },
        }
    }

    /// Number of nodes.
    pub fn node_count(&self) -> u16 {
        self.shard.nodes
    }

    /// Mesh hop count between two nodes (Manhattan distance + 1 for the
    /// ejection router; 1 for self-sends, which still traverse the NI).
    pub fn hops(&self, a: NodeId, b: NodeId) -> u64 {
        self.shard.hops(a, b)
    }

    /// Injects `packet` at instant `now` and stages it for delivery;
    /// returns the instant it reaches its destination's inbound link
    /// (before serialization). Drain staged packets with
    /// [`FabricShard::commit_next`] via [`Interconnect::shard_mut`].
    ///
    /// # Panics
    ///
    /// Panics if either endpoint is outside the fabric.
    pub fn send(&mut self, packet: Packet, now: SimTime) -> SimTime {
        self.shard.send(packet, now)
    }

    /// The machine-wide delivery source (the serial engine drains it with
    /// [`FabricShard::commit_next`], exactly as each parallel shard drains
    /// its own).
    pub fn shard_mut(&mut self) -> &mut FabricShard {
        &mut self.shard
    }

    /// Packets staged but not yet committed.
    pub fn in_flight_count(&self) -> usize {
        self.shard.staged_len()
    }

    /// Fabric statistics.
    pub fn stats(&self) -> StatSet {
        self.shard.stats()
    }

    /// Wire bytes serialized on each node's inbound link, indexed by
    /// destination node (payload plus header, counted at admit).
    pub fn wire_bytes_per_link(&self) -> impl ExactSizeIterator<Item = u64> + '_ {
        self.shard.wire_bytes_per_link()
    }

    /// Packets the fabric itself discarded (distinct from delivery-level
    /// bad-address drops); 0 on any run whose packets stay well-formed.
    pub fn fabric_drops(&self) -> u64 {
        self.shard.fabric_drops()
    }

    /// Per-destination index inserts that overflowed a full lane.
    pub fn dst_lane_spills(&self) -> u64 {
        self.shard.dst_lane_spills()
    }

    /// Staged-queue wheel metrics `(spills, reseeds, peak depth)`,
    /// including totals absorbed from merged shards.
    pub fn staged_wheel_metrics(&self) -> (u64, u64, u64) {
        self.shard.staged_wheel_metrics()
    }

    /// Splits the fabric into `shards` independent shards for conservative
    /// parallel execution. Each shard can compute routes for any pair (the
    /// topology is immutable) and carries a copy of the per-destination
    /// inbound-link state; a parallel engine must ensure each destination
    /// node's link is driven by exactly one shard, then give the state back
    /// with [`Interconnect::merge`].
    ///
    /// # Panics
    ///
    /// Panics with packets in flight (the engine must start from a
    /// quiet fabric) or a zero shard count.
    pub fn split(&mut self, shards: usize) -> Vec<FabricShard> {
        assert!(shards > 0, "need at least one shard");
        assert!(self.shard.staged.is_empty(), "cannot split a fabric with packets in flight");
        (0..shards)
            .map(|_| FabricShard {
                nodes: self.shard.nodes,
                cols: self.shard.cols,
                params: self.shard.params,
                // Shards inherit link occupancy but start their byte
                // tallies at zero: merge() sums the per-shard columns.
                links: self
                    .shard
                    .links
                    .iter()
                    .map(|l| LinkState { busy_until: l.busy_until, wire_bytes: 0 })
                    .collect(),
                staged: MergeQueue::new(),
                dst_keys: DstIndex::new(self.shard.nodes),
                packets: Counter::new(),
                payload_bytes: Counter::new(),
                drops: Counter::new(),
            })
            .collect()
    }

    /// Reabsorbs shard state after a parallel run: node `i`'s inbound-link
    /// occupancy is taken from shard `owner[i]`, and shard traffic counters
    /// fold into the fabric's, so [`Interconnect::stats`] reports the same
    /// totals a serial run would.
    ///
    /// # Panics
    ///
    /// Panics if `owner` names a missing shard, is the wrong length, or a
    /// shard still holds staged packets (the engine must drain every shard
    /// before reassembly).
    pub fn merge(&mut self, shards: Vec<FabricShard>, owner: &[usize]) {
        assert_eq!(owner.len(), self.shard.nodes as usize, "one owner per node");
        for (node, &shard) in owner.iter().enumerate() {
            self.shard.links[node].busy_until = shards[shard].links[node].busy_until;
        }
        for shard in shards {
            assert!(shard.staged.is_empty(), "cannot merge a shard with staged packets");
            self.shard.packets.add(shard.packets.get());
            self.shard.payload_bytes.add(shard.payload_bytes.get());
            self.shard.drops.add(shard.drops.get());
            self.shard.dst_keys.spills += shard.dst_keys.spills;
            self.shard.staged.absorb_metrics(&shard.staged);
            // Each node's inbound link is driven by exactly one shard, so
            // summing every shard's per-link column folds in the owner's
            // traffic and zeros from everyone else.
            for (total, part) in self.shard.links.iter_mut().zip(&shard.links) {
                total.wire_bytes += part.wire_bytes;
            }
        }
    }
}

/// Staged keys a destination lane can hold before spilling into the
/// shared side vector: sized for the deepest same-destination backlog a
/// multi-window crossing produces (per flow: a handful of calibration
/// singles plus one run per window), with [`DstIndex::spill`] absorbing
/// pathological fan-in without losing correctness.
const DST_LANE_CAP: usize = 32;

/// Per-destination index over the staged queue's keys: lane `d` holds the
/// `(link_ready, id)` keys of every staged entry bound for node `d`, so
/// the commit loop can ask "what is the earliest *other* entry for this
/// destination?" in O(lane) without scanning the whole queue.
///
/// Layout is one flat slab (`nodes × DST_LANE_CAP` slots) — no per-lane
/// `Vec`s, so building the index costs two allocations regardless of node
/// count and steady-state maintenance allocates nothing. Keys are
/// unsorted within a lane (lanes are small; a linear minimum beats
/// keeping them ordered). Invariant: `spill` holds keys for a destination
/// only while that destination's lane is full — removals backfill from
/// the spill — so [`DstIndex::min`] may skip the spill scan for any lane
/// below capacity.
#[derive(Debug)]
struct DstIndex {
    /// Lane `d` occupies `keys[d * DST_LANE_CAP..][..counts[d]]`.
    keys: Vec<(SimTime, u64)>,
    /// Occupied slots per lane.
    counts: Vec<u32>,
    /// `(dst, key)` overflow for full lanes; almost always empty.
    spill: Vec<(u16, (SimTime, u64))>,
    /// Inserts that overflowed a full lane (metrics plane: fan-in
    /// pressure; each costs O(spill) maintenance instead of O(1)).
    spills: u64,
}

impl DstIndex {
    fn new(nodes: u16) -> Self {
        DstIndex {
            keys: vec![(SimTime::ZERO, 0); usize::from(nodes) * DST_LANE_CAP],
            counts: vec![0; usize::from(nodes)],
            spill: Vec::new(),
            spills: 0,
        }
    }

    // lint:hot_path
    fn insert(&mut self, dst: u16, key: (SimTime, u64)) {
        let d = usize::from(dst);
        let n = self.counts[d] as usize;
        if n < DST_LANE_CAP {
            self.keys[d * DST_LANE_CAP + n] = key;
            self.counts[d] = (n + 1) as u32;
        } else {
            self.spills += 1;
            // Each overflow past DST_LANE_CAP same-dst keys is counted
            // in `spills` so the metrics plane surfaces fan-in pressure.
            // lint:allow(A1) -- allocates only while the spill's high-water
            // mark grows; swap_remove drains keep the capacity.
            self.spill.push((dst, key));
        }
    }

    // lint:hot_path
    fn remove(&mut self, dst: u16, key: (SimTime, u64)) {
        let d = usize::from(dst);
        let n = self.counts[d] as usize;
        let lane = &mut self.keys[d * DST_LANE_CAP..][..DST_LANE_CAP];
        if let Some(i) = lane[..n].iter().position(|k| *k == key) {
            lane[i] = lane[n - 1];
            // Backfill from the spill so spilled keys only ever shadow a
            // full lane (the invariant `min` relies on).
            if let Some(j) = self.spill.iter().position(|(s, _)| *s == dst) {
                lane[n - 1] = self.spill.swap_remove(j).1;
            } else {
                self.counts[d] = (n - 1) as u32;
            }
            return;
        }
        let j = self
            .spill
            .iter()
            .position(|(s, k)| *s == dst && *k == key)
            // INVARIANT: every staged entry registered its key on stage, so
            // a key absent from the lane must sit in the spill.
            .expect("staged key must be indexed");
        self.spill.swap_remove(j);
    }

    /// Earliest staged key bound for `dst`, if any.
    // lint:hot_path
    fn min(&self, dst: u16) -> Option<(SimTime, u64)> {
        let d = usize::from(dst);
        let n = self.counts[d] as usize;
        let mut best = self.keys[d * DST_LANE_CAP..][..n].iter().copied().min();
        if n == DST_LANE_CAP {
            for &(s, k) in &self.spill {
                if s == dst && best.is_none_or(|b| k < b) {
                    best = Some(k);
                }
            }
        }
        best
    }
}

/// One destination's inbound-link state: when the link frees up, plus
/// the wire bytes (payload + header) it has serialized. Counted at
/// [`FabricShard::admit`] — exactly once per delivered member — so the
/// per-link byte totals are a pure function of the delivery timeline and
/// identical at any shard count.
#[derive(Debug, Clone, Copy)]
struct LinkState {
    busy_until: SimTime,
    wire_bytes: u64,
}

impl LinkState {
    const IDLE: LinkState = LinkState { busy_until: SimTime::ZERO, wire_bytes: 0 };
}

/// One shard's slice of the fabric — **the** delivery source of the
/// machine. The serial [`Interconnect`] is one shard covering every node;
/// the parallel engine runs N of them, one per worker.
///
/// A shard plays both fabric roles without touching shared state:
///
/// - **sender side** — [`FabricShard::inject`] stamps a packet and returns
///   when it reaches its destination's inbound link (routing latency only;
///   no shared queue),
/// - **receiver side** — staged packets ([`FabricShard::stage`]) pop in
///   deterministic `(link_ready, id)` order through
///   [`FabricShard::commit_next`], which serializes each on the
///   destination's inbound link and returns its arrival.
///
/// Splitting the fabric this way moves every mutable per-destination
/// structure (the link states, the staged queue) to the shard that
/// owns the destination node, which is what lets shards run on separate
/// threads with packets exchanged only at epoch boundaries.
#[derive(Debug)]
pub struct FabricShard {
    nodes: u16,
    cols: u16,
    params: LinkParams,
    /// Per-destination inbound-link state; only indices this shard owns
    /// are meaningful. Occupancy and the wire-byte tally live in one
    /// struct so `admit` pays a single bounds check and touches a single
    /// cache line per member.
    links: Vec<LinkState>,
    /// Entries awaiting commit, keyed `(link_ready, merge tag)`: the pop
    /// order is a pure function of the staged set, never of insertion
    /// order, so serial and parallel drains are the same sequence. An
    /// entry is a single packet or a whole [`PacketRun`] keyed by its
    /// first member.
    staged: MergeQueue<Staged>,
    /// Per-destination view of `staged`'s keys, kept in lockstep: the
    /// commit loop consults it to split runs only where a same-destination
    /// entry actually interleaves.
    dst_keys: DstIndex,
    packets: Counter,
    payload_bytes: Counter,
    /// Packets the fabric itself discarded (an out-of-fabric destination
    /// reaching the ejection router). [`FabricShard::inject`] asserts both
    /// endpoints, so this stays 0 unless a header is corrupted in flight;
    /// it is a distinct counter from the delivery layer's bad-address
    /// drops so conservation can attribute every undelivered packet.
    drops: Counter,
}

impl FabricShard {
    /// Mesh hop count between two nodes (same topology as the parent
    /// [`Interconnect::hops`]).
    pub fn hops(&self, a: NodeId, b: NodeId) -> u64 {
        let (ar, ac) = (a.raw() / self.cols, a.raw() % self.cols);
        let (br, bc) = (b.raw() / self.cols, b.raw() % self.cols);
        u64::from(ar.abs_diff(br)) + u64::from(ac.abs_diff(bc)) + 1
    }

    /// Sender side: stamps `packet` as sent at `now`, counts it, and
    /// returns the instant it reaches the destination's inbound link
    /// (`now` + routing latency, **before** link serialization).
    ///
    /// # Panics
    ///
    /// Panics if either endpoint is outside the fabric.
    // lint:hot_path
    pub fn inject(&mut self, packet: &mut Packet, now: SimTime) -> SimTime {
        assert!(packet.src.raw() < self.nodes, "source {} not in fabric", packet.src);
        assert!(packet.dst.raw() < self.nodes, "destination {} not in fabric", packet.dst);
        packet.sent_at = now;
        self.packets.incr();
        self.payload_bytes.add(packet.payload.len() as u64);
        let link_ready = now + self.params.hop_latency * self.hops(packet.src, packet.dst);
        packet.meta.link_ready = link_ready;
        link_ready
    }

    /// Stages an entry that reaches its destination's inbound link at
    /// `link_ready`, keyed for the deterministic commit order. `tag` must
    /// be unique per staged member — the (first) packet's merge tag
    /// ([`Packet::merge_tag`]: §7 priority class bit over the `XferId`
    /// raw value); a run's later members own the consecutive tags above
    /// it.
    // lint:hot_path
    pub fn stage(&mut self, link_ready: SimTime, tag: u64, item: Staged) {
        let dst = match &item {
            Staged::One(p) => p.dst,
            Staged::Run(r) => r.template.dst,
        };
        // lint:allow(A1) -- DstIndex::insert writes a preallocated slab
        // (it is a lint:hot_path root itself and checked on its own).
        self.dst_keys.insert(dst.raw(), (link_ready, tag));
        // lint:allow(A1) -- MergeQueue::push reuses heap capacity retained
        // across pops; steady-state staging never allocates.
        self.staged.push(link_ready, tag, item);
    }

    /// [`FabricShard::inject`] + [`FabricShard::stage`] in one step, keyed
    /// by the packet's own correlation ID: the whole sender side of a
    /// transfer. Returns the `link_ready` instant.
    // lint:hot_path
    pub fn send(&mut self, mut packet: Packet, now: SimTime) -> SimTime {
        let link_ready = self.inject(&mut packet, now);
        let tag = packet.merge_tag();
        self.stage(link_ready, tag, Staged::One(packet));
        link_ready
    }

    /// Sender side of a whole run: stamps the template as sent at `now`
    /// (member `k` follows at `now + stride·k`), counts every member, and
    /// returns the instant member 0 reaches the destination's inbound
    /// link. One routing computation covers the run — later members add
    /// the delta-encoded stride instead of re-deriving hop latency.
    ///
    /// # Panics
    ///
    /// Panics if either endpoint is outside the fabric or the run is
    /// empty.
    // lint:hot_path
    pub fn inject_run(&mut self, run: &mut PacketRun, now: SimTime) -> SimTime {
        assert!(run.count > 0, "a run needs at least one member");
        let p = &mut run.template;
        assert!(p.src.raw() < self.nodes, "source {} not in fabric", p.src);
        assert!(p.dst.raw() < self.nodes, "destination {} not in fabric", p.dst);
        p.sent_at = now;
        self.packets.add(u64::from(run.count));
        self.payload_bytes.add(p.payload.len() as u64 * u64::from(run.count));
        let link_ready = now + self.params.hop_latency * self.hops(p.src, p.dst);
        p.meta.link_ready = link_ready;
        link_ready
    }

    /// [`FabricShard::inject_run`] + staging in one step: the whole
    /// sender side of a message train as one queue entry. Returns member
    /// 0's `link_ready` instant.
    // lint:hot_path
    pub fn send_run(&mut self, mut run: PacketRun, now: SimTime) -> SimTime {
        let link_ready = self.inject_run(&mut run, now);
        let tag = run.template.merge_tag();
        self.stage(link_ready, tag, Staged::Run(run));
        link_ready
    }

    /// Receiver side: pops the earliest staged entry whose `link_ready`
    /// is at or before `horizon` (`None` = no bound). A single packet is
    /// serialized on its destination's inbound link immediately
    /// ([`Commit::One`]); for a run, one horizon check and one
    /// per-destination index lookup bound how many leading members commit
    /// now ([`Commit::Run`]) — member `i` joins the commit while its key
    /// `(link_ready + stride·i, id + i)` is still due **and** still sorts
    /// ahead of every other staged entry **bound for the same
    /// destination**. Allocation-free.
    ///
    /// Only the same-destination order matters: every effect of a commit
    /// — inbound-link serialization ([`FabricShard::admit`]), the
    /// receive-side EISA DMA, the memory deposit, `last_delivery`, the
    /// passive clock — is keyed by the destination node, and trace export
    /// sorts spans by `(link_ready, id)` before rendering. Entries bound
    /// for *other* destinations may therefore commit after a run that
    /// their keys interleave with; every per-destination subsequence of
    /// the strict global `(link_ready, id)` order is preserved exactly,
    /// so the timeline, digests and trace bytes are bit-identical to the
    /// unrelaxed drain — while a long run no longer splits (one pop and
    /// one restage per member) just because unrelated traffic shares the
    /// shard's queue.
    ///
    /// Identical arithmetic at any shard count: admitting members in the
    /// per-destination `(link_ready, tag)` order reproduces the timeline
    /// bit for bit.
    ///
    /// **This is the §7 priority arbitration point.** The staged tag
    /// carries the packet's [`crate::PacketClass`] in its top bit
    /// ([`Packet::merge_tag`]), so when a system-class and a user-class
    /// entry reach a destination's inbound link at the same `link_ready`
    /// instant, the system packet pops — and serializes on the link —
    /// first, exactly the "system packets take priority" rule of the
    /// paper's two outgoing queues. Single-class workloads see the plain
    /// `XferId` order, unchanged from the pre-priority fabric.
    // lint:hot_path
    pub fn commit_next(&mut self, horizon: Option<SimTime>) -> Option<Commit> {
        let (link_ready, item) = self.staged.pop_within(horizon)?;
        match item {
            Staged::One(packet) => {
                self.dst_keys.remove(packet.dst.raw(), (link_ready, packet.merge_tag()));
                let arrival = self.admit(&packet, link_ready);
                Some(Commit::One { link_ready, arrival, packet })
            }
            Staged::Run(run) => {
                let dst = run.template.dst.raw();
                self.dst_keys.remove(dst, (link_ready, run.template.merge_tag()));
                let next = self.dst_keys.min(dst);
                let mut take: u32 = 1;
                while take < run.count {
                    let key = run.member_key(take);
                    let due = horizon.is_none_or(|h| key.0 <= h);
                    let ahead = next.is_none_or(|n| key < n);
                    if !(due && ahead) {
                        break;
                    }
                    take += 1;
                }
                Some(Commit::Run { link_ready, run, take })
            }
        }
    }

    /// Returns the uncommitted tail of a partially committed run to the
    /// staged queue: the template advances past the `take` delivered
    /// members and the remainder re-enters keyed by its new first member.
    /// The payload moves with the run — no clone, no allocation.
    // lint:hot_path
    pub fn restage_run_tail(&mut self, mut run: PacketRun, take: u32) {
        if take >= run.count {
            return;
        }
        run.advance(take);
        let (at, tag) = run.member_key(0);
        self.stage(at, tag, Staged::Run(run));
    }

    /// Serializes a packet that reached the destination's inbound link at
    /// `link_ready` and returns its arrival instant (wire time plus any
    /// wait for earlier traffic on the same link).
    // lint:hot_path
    pub fn admit(&mut self, packet: &Packet, link_ready: SimTime) -> SimTime {
        let bytes = packet.wire_bytes();
        let wire = SimDuration::from_bytes_at_rate(bytes, self.params.mb_per_s);
        let d = packet.dst.raw() as usize;
        let Some(link) = self.links.get_mut(d) else {
            // Defensive: inject() asserts both endpoints, so only a header
            // corrupted after injection can land here. Count the discard
            // (the conservation check attributes it) instead of panicking
            // mid-drain; the bogus instant is never observed because the
            // packet is gone.
            self.drops.incr();
            return link_ready;
        };
        let start = link_ready.max(link.busy_until);
        let arrives = start + wire;
        link.busy_until = arrives;
        link.wire_bytes += bytes;
        arrives
    }

    /// Packets staged but not yet committed.
    pub fn staged_len(&self) -> usize {
        self.staged.len()
    }

    /// Earliest staged `link_ready`, if any.
    pub fn next_staged(&self) -> Option<SimTime> {
        self.staged.next_at()
    }

    /// Traffic statistics (injected packets and payload bytes).
    pub fn stats(&self) -> StatSet {
        let mut s = StatSet::new("net");
        s.add("packets", self.packets.get());
        s.add("payload_bytes", self.payload_bytes.get());
        s
    }

    /// The shard's minimum cross-node latency (one router hop): the
    /// conservative engine's lookahead. Any packet injected at or after
    /// instant `t` reaches its destination's inbound link strictly after
    /// `t` as long as this is positive.
    pub fn lookahead(&self) -> SimDuration {
        self.params.hop_latency
    }

    /// Wire bytes serialized on each node's inbound link, indexed by
    /// destination node (payload plus header, counted at admit).
    pub fn wire_bytes_per_link(&self) -> impl ExactSizeIterator<Item = u64> + '_ {
        self.links.iter().map(|l| l.wire_bytes)
    }

    /// Packets the fabric itself discarded (see the `drops` field docs);
    /// 0 on any run whose packets stay well-formed.
    pub fn fabric_drops(&self) -> u64 {
        self.drops.get()
    }

    /// Per-destination index inserts that overflowed a full lane into the
    /// shared spill vector.
    pub fn dst_lane_spills(&self) -> u64 {
        self.dst_keys.spills
    }

    /// Staged-queue wheel metrics `(spills, reseeds, peak depth)` — see
    /// [`MergeQueue::spill_count`] and friends.
    pub fn staged_wheel_metrics(&self) -> (u64, u64, u64) {
        (self.staged.spill_count(), self.staged.reseed_count(), self.staged.len_high_water())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use shrimp_mem::PhysAddr;
    use shrimp_sim::XferId;

    /// A test packet with a unique correlation ID (`src:seq`): staged
    /// packets are keyed by ID, so distinct IDs pin a deterministic order.
    fn pkt(src: u16, dst: u16, bytes: usize, seq: u64) -> Packet {
        let mut p =
            Packet::new(NodeId::new(src), NodeId::new(dst), PhysAddr::new(0), vec![0; bytes]);
        p.meta.id = XferId::new(src, seq);
        p
    }

    /// Pops one commit and flattens it to per-member `(arrival, packet-ish)`
    /// tuples: run members are admitted on the link one by one exactly as
    /// the delivery core does, and any tail is restaged.
    fn commit_flat(
        shard: &mut FabricShard,
        horizon: Option<SimTime>,
    ) -> Vec<(SimTime, XferId, u8)> {
        match shard.commit_next(horizon) {
            None => Vec::new(),
            Some(Commit::One { arrival, packet, .. }) => {
                vec![(arrival, packet.meta.id, packet.payload[0])]
            }
            Some(Commit::Run { link_ready, run, take }) => {
                let mut out = Vec::new();
                for i in 0..take {
                    let lr = link_ready + run.stride() * u64::from(i);
                    let arrival = shard.admit(&run.template, lr);
                    let id = XferId::new(
                        run.template.meta.id.node(),
                        run.template.meta.id.seq() + u64::from(i),
                    );
                    out.push((arrival, id, run.template.payload[0]));
                }
                shard.restage_run_tail(run, take);
                out
            }
        }
    }

    /// Drains every staged entry, returning `(arrival, payload[0])`.
    fn drain(net: &mut Interconnect) -> Vec<(SimTime, u8)> {
        let mut out = Vec::new();
        loop {
            let batch = commit_flat(net.shard_mut(), None);
            if batch.is_empty() {
                break;
            }
            out.extend(batch.into_iter().map(|(at, _, b)| (at, b)));
        }
        out
    }

    #[test]
    fn hops_on_2x2_mesh() {
        let net = Interconnect::new(4, LinkParams::default());
        assert_eq!(net.hops(NodeId::new(0), NodeId::new(0)), 1);
        assert_eq!(net.hops(NodeId::new(0), NodeId::new(1)), 2);
        assert_eq!(net.hops(NodeId::new(0), NodeId::new(3)), 3); // diagonal
    }

    #[test]
    fn delivery_time_scales_with_distance() {
        let mut net = Interconnect::new(4, LinkParams::default());
        net.send(pkt(0, 1, 64, 0), SimTime::ZERO);
        net.send(pkt(0, 3, 64, 1), SimTime::ZERO);
        let times = drain(&mut net);
        let (near, far) = (times[0].0, times[1].0);
        assert!(far > near);
        assert_eq!(far - near, LinkParams::default().hop_latency);
    }

    #[test]
    fn destination_link_serializes() {
        let mut net = Interconnect::new(4, LinkParams::default());
        net.send(pkt(0, 1, 1000, 0), SimTime::ZERO);
        net.send(pkt(2, 1, 1000, 0), SimTime::ZERO);
        let times = drain(&mut net);
        assert!(times[1].0 > times[0].0, "second packet must queue behind the first");
    }

    #[test]
    fn point_to_point_ordering_preserved() {
        let mut net = Interconnect::new(2, LinkParams::default());
        let mut expected = Vec::new();
        for i in 0..5u8 {
            let mut p = pkt(0, 1, 32, u64::from(i));
            p.payload[0] = i;
            net.send(p, SimTime::from_nanos(u64::from(i)));
            expected.push(i);
        }
        let got: Vec<u8> = drain(&mut net).into_iter().map(|(_, b)| b).collect();
        assert_eq!(got, expected);
    }

    #[test]
    fn commit_respects_horizon() {
        let mut net = Interconnect::new(2, LinkParams::default());
        let link_ready = net.send(pkt(0, 1, 64, 0), SimTime::ZERO);
        let shard = net.shard_mut();
        assert!(shard.commit_next(Some(link_ready - SimDuration::from_nanos(1))).is_none());
        assert_eq!(net.in_flight_count(), 1);
        assert_eq!(net.shard_mut().next_staged(), Some(link_ready));
        assert!(net.shard_mut().commit_next(Some(link_ready)).is_some());
        assert_eq!(net.in_flight_count(), 0);
    }

    #[test]
    fn commit_pops_one_at_a_time_in_staged_order() {
        let mut net = Interconnect::new(2, LinkParams::default());
        net.send(pkt(0, 1, 64, 0), SimTime::ZERO);
        net.send(pkt(0, 1, 64, 1), SimTime::ZERO);
        // Same link_ready: the correlation ID breaks the tie, so the
        // first-injected packet commits first and owns the link first.
        let first = commit_flat(net.shard_mut(), None);
        let second = commit_flat(net.shard_mut(), None);
        assert_eq!(first[0].1, XferId::new(0, 0));
        assert_eq!(second[0].1, XferId::new(0, 1));
        assert!(second[0].0 > first[0].0, "link serialization orders arrivals");
        assert!(net.shard_mut().commit_next(None).is_none());
    }

    /// A run staged alongside the equivalent singles: identical arrival
    /// sequence, and a mid-run single from another node splits the run at
    /// exactly the right member.
    #[test]
    fn run_commit_matches_equivalent_singles() {
        let stride = SimDuration::from_us(20.0);
        let base = SimTime::from_nanos(5_000);

        // Literal path: five singles, 20 µs apart.
        let mut literal = Interconnect::new(4, LinkParams::default());
        for i in 0..5u64 {
            literal.send(pkt(0, 1, 256, i), base + stride * i);
        }
        // Competing traffic from node 2 lands between members 1 and 2.
        literal.send(pkt(2, 1, 64, 900), base + stride * 2);
        let lit = drain(&mut literal);

        // Run path: one descriptor plus the same competing single.
        let mut batched = Interconnect::new(4, LinkParams::default());
        let run = PacketRun {
            template: pkt(0, 1, 256, 0),
            count: 5,
            stride_ns: stride.as_nanos() as u32,
        };
        batched.shard_mut().send_run(run, base);
        batched.send(pkt(2, 1, 64, 900), base + stride * 2);
        let bat = drain(&mut batched);

        let lit_times: Vec<SimTime> = lit.iter().map(|&(at, _)| at).collect();
        let bat_times: Vec<SimTime> = bat.iter().map(|&(at, _)| at).collect();
        assert_eq!(bat_times, lit_times, "run split must reproduce the single-packet timeline");
        assert_eq!(batched.stats().get("packets"), literal.stats().get("packets"));
        assert_eq!(batched.stats().get("payload_bytes"), literal.stats().get("payload_bytes"));
    }

    /// Traffic bound for a *different* destination never splits a run,
    /// even when its key interleaves with the run's members — and the
    /// arrivals it produces are identical to the fully split drain,
    /// because every delivery effect is keyed by the destination.
    #[test]
    fn cross_destination_traffic_does_not_split_a_run() {
        let stride = SimDuration::from_us(20.0);
        let base = SimTime::from_nanos(5_000);
        let mut net = Interconnect::new(4, LinkParams::default());
        let run = PacketRun {
            template: pkt(0, 1, 256, 0),
            count: 5,
            stride_ns: stride.as_nanos() as u32,
        };
        net.shard_mut().send_run(run, base);
        // Key lands between members 1 and 2, but the destination differs.
        net.send(pkt(2, 3, 64, 900), base + stride * 2);

        let first = commit_flat(net.shard_mut(), None);
        assert_eq!(first.len(), 5, "unrelated traffic must not split the run");

        // Same scenario as singles: the per-destination arrivals match.
        let mut literal = Interconnect::new(4, LinkParams::default());
        for i in 0..5u64 {
            literal.send(pkt(0, 1, 256, i), base + stride * i);
        }
        literal.send(pkt(2, 3, 64, 900), base + stride * 2);
        let mut lit: Vec<SimTime> = drain(&mut literal).into_iter().map(|(at, _)| at).collect();
        let mut bat: Vec<SimTime> = first.iter().map(|&(at, _, _)| at).collect();
        bat.extend(drain(&mut net).into_iter().map(|(at, _)| at));
        lit.sort_unstable();
        bat.sort_unstable();
        assert_eq!(bat, lit, "arrivals must match the fully split drain");
    }

    /// The per-destination index stays correct past `DST_LANE_CAP`
    /// same-destination entries: the spill lane absorbs the overflow and
    /// commits still drain in `(link_ready, id)` order.
    #[test]
    fn deep_same_destination_backlog_spills_and_drains_in_order() {
        let mut net = Interconnect::new(2, LinkParams::default());
        let n = (DST_LANE_CAP * 2 + 3) as u64;
        for i in 0..n {
            net.send(pkt(0, 1, 16, n - 1 - i), SimTime::from_nanos((n - 1 - i) * 10));
        }
        let drained = drain(&mut net);
        assert_eq!(drained.len(), n as usize);
        assert!(drained.windows(2).all(|w| w[0].0 < w[1].0), "arrivals stay ordered");
    }

    /// The horizon splits a run: only members due at or before it commit,
    /// the tail re-stages with shifted keys, and a later commit finishes
    /// the run.
    #[test]
    fn run_commit_respects_horizon() {
        let stride = SimDuration::from_us(10.0);
        let mut net = Interconnect::new(2, LinkParams::default());
        let run =
            PacketRun { template: pkt(0, 1, 64, 0), count: 4, stride_ns: stride.as_nanos() as u32 };
        let base = net.shard_mut().send_run(run, SimTime::ZERO);

        // Horizon covers members 0 and 1 only.
        let horizon = base + stride;
        let first = commit_flat(net.shard_mut(), Some(horizon));
        assert_eq!(first.len(), 2, "two members due at the horizon");
        assert_eq!(first[0].1, XferId::new(0, 0));
        assert_eq!(first[1].1, XferId::new(0, 1));
        assert_eq!(net.shard_mut().next_staged(), Some(base + stride * 2));
        assert!(net.shard_mut().commit_next(Some(horizon)).is_none());

        let rest = commit_flat(net.shard_mut(), None);
        assert_eq!(rest.len(), 2, "the restaged tail commits as one run");
        assert_eq!(rest[0].1, XferId::new(0, 2));
        assert_eq!(rest[1].1, XferId::new(0, 3));
        assert_eq!(net.in_flight_count(), 0);
    }

    /// §7 arbitration: a system packet staged at the same `link_ready`
    /// as user packets commits first, even when its transfer ID sorts
    /// last — and within each class the `XferId` order is untouched.
    #[test]
    fn system_class_wins_equal_time_arbitration() {
        use crate::PacketClass;
        let mut net = Interconnect::new(2, LinkParams::default());
        let at = SimTime::from_nanos(100);
        net.send(pkt(0, 1, 64, 0), at);
        net.send(pkt(0, 1, 64, 1), at);
        let mut sys = pkt(0, 1, 64, 2);
        sys.class = PacketClass::System;
        net.send(sys, at);
        let order: Vec<u64> = std::iter::from_fn(|| commit_flat(net.shard_mut(), None).pop())
            .map(|(_, id, _)| id.seq())
            .collect();
        assert_eq!(order, [2, 0, 1], "system first, then user in XferId order");
    }

    /// A user-class run and a same-time system single: the system packet
    /// splits the run at member 0 (it owns the link first), and the run
    /// commits after it without losing a member.
    #[test]
    fn system_single_preempts_a_user_run_at_equal_time() {
        use crate::PacketClass;
        let stride = SimDuration::from_us(10.0);
        let mut net = Interconnect::new(4, LinkParams::default());
        let run =
            PacketRun { template: pkt(0, 1, 64, 0), count: 3, stride_ns: stride.as_nanos() as u32 };
        net.shard_mut().send_run(run, SimTime::ZERO);
        let mut sys = pkt(3, 1, 64, 900);
        sys.class = PacketClass::System;
        // Nodes 0 and 3 are both two hops from node 1 on the 2×2 mesh, so
        // sending at the same instant lands both at the same link_ready.
        net.send(sys, SimTime::ZERO);
        let order: Vec<XferId> = std::iter::from_fn(|| {
            let batch = commit_flat(net.shard_mut(), None);
            (!batch.is_empty()).then_some(batch)
        })
        .flatten()
        .map(|(_, id, _)| id)
        .collect();
        assert_eq!(
            order,
            [XferId::new(3, 900), XferId::new(0, 0), XferId::new(0, 1), XferId::new(0, 2)],
            "system packet commits ahead of the whole equal-time run"
        );
    }

    #[test]
    fn stats_count_traffic() {
        let mut net = Interconnect::new(2, LinkParams::default());
        net.send(pkt(0, 1, 10, 0), SimTime::ZERO);
        net.send(pkt(1, 0, 20, 0), SimTime::ZERO);
        assert_eq!(net.stats().get("packets"), 2);
        assert_eq!(net.stats().get("payload_bytes"), 30);
    }

    #[test]
    fn wire_bytes_counted_per_destination_link() {
        let mut net = Interconnect::new(4, LinkParams::default());
        net.send(pkt(0, 1, 100, 0), SimTime::ZERO);
        net.send(pkt(2, 1, 50, 0), SimTime::ZERO);
        net.send(pkt(0, 3, 10, 1), SimTime::ZERO);
        drain(&mut net);
        let per_link: Vec<u64> = net.wire_bytes_per_link().collect();
        let hdr = pkt(0, 1, 0, 0).wire_bytes();
        assert_eq!(per_link[0], 0, "node 0 received nothing");
        assert_eq!(per_link[1], 150 + 2 * hdr);
        assert_eq!(per_link[3], 10 + hdr);
        assert_eq!(net.fabric_drops(), 0);
    }

    #[test]
    fn corrupted_destination_is_dropped_not_panicked() {
        // `inject` asserts endpoints, so only a header corrupted after
        // injection can reach `admit` out of range; the fabric counts the
        // discard instead of unwinding mid-drain.
        let mut net = Interconnect::new(2, LinkParams::default());
        let shard = net.shard_mut();
        shard.admit(&pkt(0, 7, 16, 0), SimTime::ZERO);
        assert_eq!(shard.fabric_drops(), 1);
        assert_eq!(shard.wire_bytes_per_link().collect::<Vec<u64>>(), [0, 0]);
    }

    #[test]
    fn dst_lane_overflow_is_counted() {
        let mut net = Interconnect::new(2, LinkParams::default());
        let n = (DST_LANE_CAP + 4) as u64;
        for i in 0..n {
            net.send(pkt(0, 1, 16, i), SimTime::from_nanos(i * 10));
        }
        assert_eq!(net.dst_lane_spills(), 4);
        drain(&mut net);
    }

    #[test]
    #[should_panic(expected = "not in fabric")]
    fn out_of_fabric_send_panics() {
        let mut net = Interconnect::new(2, LinkParams::default());
        net.send(pkt(0, 5, 1, 0), SimTime::ZERO);
    }

    #[test]
    fn grid_cols_handles_non_square_node_counts() {
        // (nodes, expected columns): ceil(sqrt(n)) by pure integers, from
        // toy meshes through the big-machine points the bench sweeps —
        // including 1000, which is decidedly non-square (31² = 961 < 1000).
        for (nodes, cols) in [
            (1, 1),
            (2, 2),
            (3, 2),
            (4, 2),
            (5, 3),
            (7, 3),
            (9, 3),
            (10, 4),
            (64, 8),
            (256, 16),
            (1000, 32),
            (1024, 32),
        ] {
            assert_eq!(grid_cols(nodes), cols, "{nodes} nodes");
        }
    }

    #[test]
    fn non_square_meshes_route_consistently() {
        // From toy meshes to a 1000-node machine (a 32-wide grid with a
        // ragged last row): every pair has a positive hop count, symmetric
        // in both directions, and self-sends still cross the ejection
        // router once.
        for nodes in [3u16, 5, 7, 64, 1000] {
            let net = Interconnect::new(nodes, LinkParams::default());
            for a in 0..nodes {
                for b in 0..nodes {
                    let ab = net.hops(NodeId::new(a), NodeId::new(b));
                    let ba = net.hops(NodeId::new(b), NodeId::new(a));
                    assert_eq!(ab, ba, "{nodes} nodes: hops must be symmetric");
                    assert!(ab >= 1, "{nodes} nodes: {a}->{b} must cross the ejection router");
                }
            }
        }
    }

    #[test]
    fn split_shards_reproduce_the_one_shard_timeline() {
        // The same packet sequence through the one-shard Interconnect and
        // through split shards (staged with the same keys, committed in
        // the same order) must produce identical arrival times and
        // identical post-run link state.
        let sequence: [(u16, u16, usize, u64); 5] =
            [(0, 1, 1000, 0), (2, 1, 1000, 0), (3, 1, 64, 100), (0, 3, 256, 200), (1, 3, 64, 200)];

        let mut serial = Interconnect::new(4, LinkParams::default());
        for (i, &(s, d, bytes, at)) in sequence.iter().enumerate() {
            serial.send(pkt(s, d, bytes, i as u64), SimTime::from_nanos(at));
        }
        let serial_times: Vec<SimTime> = std::iter::from_fn(|| {
            let batch = commit_flat(serial.shard_mut(), None);
            if batch.is_empty() {
                None
            } else {
                Some(batch)
            }
        })
        .flatten()
        .map(|(at, _, _)| at)
        .collect();

        let mut net = Interconnect::new(4, LinkParams::default());
        // Nodes 0..2 on shard 0, nodes 2..4 on shard 1.
        let owner = [0usize, 0, 1, 1];
        let mut shards = net.split(2);
        for (i, &(s, d, bytes, at)) in sequence.iter().enumerate() {
            let mut p = pkt(s, d, bytes, i as u64);
            let ready = shards[owner[s as usize]].inject(&mut p, SimTime::from_nanos(at));
            let tag = p.merge_tag();
            shards[owner[d as usize]].stage(ready, tag, Staged::One(p));
        }
        let mut shard_times = Vec::new();
        for shard in &mut shards {
            loop {
                let batch = commit_flat(shard, None);
                if batch.is_empty() {
                    break;
                }
                shard_times.extend(batch.into_iter().map(|(at, _, _)| at));
            }
        }
        shard_times.sort_unstable();
        let mut sorted_serial = serial_times.clone();
        sorted_serial.sort_unstable();
        assert_eq!(shard_times, sorted_serial);
        net.merge(shards, &owner);

        assert_eq!(net.stats().get("packets"), serial.stats().get("packets"));
        assert_eq!(net.stats().get("payload_bytes"), serial.stats().get("payload_bytes"));
        // Follow-up traffic sees identical link occupancy.
        serial.send(pkt(0, 1, 64, 10), SimTime::from_nanos(300));
        net.send(pkt(0, 1, 64, 10), SimTime::from_nanos(300));
        let a = commit_flat(serial.shard_mut(), None).first().map(|&(at, _, _)| at);
        let b = commit_flat(net.shard_mut(), None).first().map(|&(at, _, _)| at);
        assert_eq!(a, b, "merged link state must match the one-shard fabric");
    }

    #[test]
    #[should_panic(expected = "packets in flight")]
    fn split_requires_quiet_fabric() {
        let mut net = Interconnect::new(2, LinkParams::default());
        net.send(pkt(0, 1, 64, 0), SimTime::ZERO);
        let _ = net.split(2);
    }

    #[test]
    fn shard_lookahead_is_hop_latency() {
        let mut net = Interconnect::new(2, LinkParams::default());
        let shards = net.split(1);
        assert_eq!(shards[0].lookahead(), LinkParams::default().hop_latency);
        assert!(shards[0].lookahead() > SimDuration::ZERO, "conservative sync needs lookahead");
    }
}
