//! Network packets and node identifiers.

use std::fmt;

use shrimp_mem::PhysAddr;
use shrimp_sim::{Payload, SimTime, XferMeta};

/// Identifies a node on the backplane.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct NodeId(u16);

impl NodeId {
    /// Wraps a raw node index.
    pub const fn new(raw: u16) -> Self {
        NodeId(raw)
    }

    /// The raw node index.
    pub const fn raw(self) -> u16 {
        self.0
    }
}

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "node{}", self.0)
    }
}

/// One SHRIMP packet: a header naming the destination node and destination
/// *physical memory address*, plus the data (§8: the NIPT lookup produces
/// "a destination node ID and a destination page number", concatenated with
/// the offset "to form the destination physical address").
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Packet {
    /// Sending node.
    pub src: NodeId,
    /// Receiving node.
    pub dst: NodeId,
    /// Destination physical memory address on the receiving node.
    pub dst_paddr: PhysAddr,
    /// Message data — a pooled buffer the sending NIC filled once; its
    /// storage recycles into the NIC's [`shrimp_sim::BufPool`] when the
    /// receiver drops the packet.
    pub payload: Payload,
    /// When the packet entered the network (stamped by the fabric).
    pub sent_at: SimTime,
    /// Flight-recorder correlation block: the transfer ID the sending NIC
    /// minted plus the timestamps accumulated on the way to the wire.
    pub meta: XferMeta,
}

impl Packet {
    /// Builds a packet (the fabric stamps `sent_at` on send). Accepts any
    /// payload source: a pooled [`Payload`] on the hot path, or a plain
    /// `Vec<u8>` in tests.
    pub fn new(src: NodeId, dst: NodeId, dst_paddr: PhysAddr, payload: impl Into<Payload>) -> Self {
        Packet {
            src,
            dst,
            dst_paddr,
            payload: payload.into(),
            sent_at: SimTime::ZERO,
            meta: XferMeta::default(),
        }
    }

    /// Header size on the wire (node id + physical address + length).
    pub const HEADER_BYTES: u64 = 16;

    /// Total bytes the packet occupies on a link.
    pub fn wire_bytes(&self) -> u64 {
        Self::HEADER_BYTES + self.payload.len() as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn node_id_display() {
        assert_eq!(NodeId::new(3).to_string(), "node3");
    }

    #[test]
    fn wire_bytes_include_header() {
        let p = Packet::new(NodeId::new(0), NodeId::new(1), PhysAddr::new(0), vec![0; 100]);
        assert_eq!(p.wire_bytes(), 116);
    }
}
