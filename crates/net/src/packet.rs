//! Network packets and node identifiers.

use std::fmt;

use shrimp_mem::PhysAddr;
use shrimp_sim::{Payload, SimTime, XferMeta};

/// Identifies a node on the backplane.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct NodeId(u16);

impl NodeId {
    /// Wraps a raw node index.
    pub const fn new(raw: u16) -> Self {
        NodeId(raw)
    }

    /// The raw node index.
    pub const fn raw(self) -> u16 {
        self.0
    }
}

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "node{}", self.0)
    }
}

/// The §7 two-priority packet class. SHRIMP's network interface keeps
/// "two outgoing queues ... one for system packets and one for user
/// packets", with system packets taking priority at the network. The
/// fabric arbitrates at [`crate::FabricShard::commit_next`]: among staged
/// entries whose `link_ready` ties, system-class packets pop first.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum PacketClass {
    /// System packets: kernel-to-kernel control traffic and anything the
    /// OS marks urgent (e.g. RPC replies a server issues on behalf of a
    /// tenant). Wins ties against user packets.
    System,
    /// User packets: ordinary UDMA data transfers. The default — every
    /// packet a NIC builds is user-class unless the engine reclassifies
    /// it, which keeps single-class workloads' commit order (and so
    /// digests) identical to the pre-priority fabric.
    #[default]
    User,
}

impl PacketClass {
    /// The class's arbitration bit: `0` for system, `1` for user. Encoded
    /// above the [`shrimp_sim::XferId`] sequence bits in a staged entry's
    /// merge tag, so `(link_ready, tag)` ordering resolves equal-time
    /// ties by class first, then by transfer ID.
    pub const fn rank(self) -> u64 {
        match self {
            PacketClass::System => 0,
            PacketClass::User => 1,
        }
    }
}

/// One SHRIMP packet: a header naming the destination node and destination
/// *physical memory address*, plus the data (§8: the NIPT lookup produces
/// "a destination node ID and a destination page number", concatenated with
/// the offset "to form the destination physical address").
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Packet {
    /// Sending node.
    pub src: NodeId,
    /// Receiving node.
    pub dst: NodeId,
    /// Destination physical memory address on the receiving node.
    pub dst_paddr: PhysAddr,
    /// Message data — a pooled buffer the sending NIC filled once; its
    /// storage recycles into the NIC's [`shrimp_sim::BufPool`] when the
    /// receiver drops the packet.
    pub payload: Payload,
    /// When the packet entered the network (stamped by the fabric).
    pub sent_at: SimTime,
    /// Flight-recorder correlation block: the transfer ID the sending NIC
    /// minted plus the timestamps accumulated on the way to the wire.
    pub meta: XferMeta,
    /// §7 priority class (system or user); see [`PacketClass`].
    pub class: PacketClass,
}

impl Packet {
    /// Builds a packet (the fabric stamps `sent_at` on send). Accepts any
    /// payload source: a pooled [`Payload`] on the hot path, or a plain
    /// `Vec<u8>` in tests.
    pub fn new(src: NodeId, dst: NodeId, dst_paddr: PhysAddr, payload: impl Into<Payload>) -> Self {
        Packet {
            src,
            dst,
            dst_paddr,
            payload: payload.into(),
            sent_at: SimTime::ZERO,
            meta: XferMeta::default(),
            class: PacketClass::default(),
        }
    }

    /// The staged-queue tag: the class's arbitration bit in bit 63, the
    /// raw transfer ID below. `XferId` packs the source node into bits
    /// 48–63 and the sequence into the low 48 bits, so bit 63 is free on
    /// any machine up to 32K nodes — far above the 1024-node meshes the
    /// engine runs — and consecutive run members (`id + i`) stay
    /// consecutive under the encoding.
    pub fn merge_tag(&self) -> u64 {
        let raw = self.meta.id.raw();
        debug_assert_eq!(raw >> 63, 0, "node index too large for the class bit");
        (self.class.rank() << 63) | raw
    }

    /// Header size on the wire (node id + physical address + length).
    pub const HEADER_BYTES: u64 = 16;

    /// Total bytes the packet occupies on a link.
    pub fn wire_bytes(&self) -> u64 {
        Self::HEADER_BYTES + self.payload.len() as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn node_id_display() {
        assert_eq!(NodeId::new(3).to_string(), "node3");
    }

    #[test]
    fn wire_bytes_include_header() {
        let p = Packet::new(NodeId::new(0), NodeId::new(1), PhysAddr::new(0), vec![0; 100]);
        assert_eq!(p.wire_bytes(), 116);
    }

    #[test]
    fn packets_default_to_user_class() {
        let p = Packet::new(NodeId::new(0), NodeId::new(1), PhysAddr::new(0), vec![0; 4]);
        assert_eq!(p.class, PacketClass::User);
    }

    #[test]
    fn system_tags_sort_before_user_tags_at_any_id() {
        use shrimp_sim::XferId;
        let mut sys = Packet::new(NodeId::new(5), NodeId::new(1), PhysAddr::new(0), vec![0; 4]);
        sys.meta.id = XferId::new(5, u64::MAX >> 16);
        sys.class = PacketClass::System;
        let mut user = Packet::new(NodeId::new(0), NodeId::new(1), PhysAddr::new(0), vec![0; 4]);
        user.meta.id = XferId::new(0, 0);
        assert!(sys.merge_tag() < user.merge_tag(), "system wins equal-time arbitration");
    }

    #[test]
    fn same_class_tags_preserve_transfer_id_order() {
        use shrimp_sim::XferId;
        let mut a = Packet::new(NodeId::new(0), NodeId::new(1), PhysAddr::new(0), vec![0; 4]);
        a.meta.id = XferId::new(0, 7);
        let mut b = Packet::new(NodeId::new(0), NodeId::new(1), PhysAddr::new(0), vec![0; 4]);
        b.meta.id = XferId::new(0, 8);
        assert!(a.merge_tag() < b.merge_tag(), "within a class, XferId order is unchanged");
        assert_eq!(b.merge_tag() - a.merge_tag(), 1, "run members stay consecutive");
    }
}
