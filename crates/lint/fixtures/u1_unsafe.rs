//! U1 fixture: `unsafe` without a safety justification comment.

fn read_raw(p: *const u8) -> u8 {
    unsafe { *p } // line 4: fires (no SAFETY comment)
}

// SAFETY: the caller guarantees `q` is valid and aligned.
fn read_justified(q: *const u8) -> u8 {
    unsafe { *q } // fine: SAFETY comment is 2 lines up, inside the window
}

unsafe impl Send for Wrapper {} // line 12: fires

struct Wrapper(*const u8);
