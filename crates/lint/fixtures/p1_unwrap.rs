//! P1 fixture: unjustified panics in delivery-path code.

fn pop_front(queue: &mut Vec<u8>) -> u8 {
    queue.pop().unwrap() // line 4: fires (.unwrap, no INVARIANT)
}

fn first(queue: &[u8]) -> u8 {
    *queue.first().expect("queue empty") // line 8: fires (.expect, no INVARIANT)
}

fn never(kind: u8) -> u8 {
    match kind {
        0 => 1,
        _ => panic!("bad kind"), // line 14: fires (panic!, no INVARIANT)
    }
}

fn justified(queue: &mut Vec<u8>) -> u8 {
    // INVARIANT: caller checked is_empty() before calling.
    queue.pop().unwrap() // fine: INVARIANT comment within window
}

#[cfg(test)]
mod tests {
    #[test]
    fn unwrap_in_tests_is_fine() {
        let v: Vec<u8> = vec![1];
        let _ = v.first().unwrap();
    }
}
