// P1-T: the delivery-path hot root never panics itself; the unwrap one
// call down is reached transitively and reported with the chain.

struct Rx {
    slot: Option<u64>,
    out: u64,
}

impl Rx {
    // lint:hot_path
    fn deliver(&mut self) {
        self.commit();
    }

    fn commit(&mut self) {
        self.out = self.slot.unwrap(); // line 16: fires with the chain
    }
}
