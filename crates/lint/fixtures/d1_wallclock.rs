//! D1 fixture: host wall-clock and OS randomness in simulation code.
use std::time::Instant; // line 2: fires

fn measure() -> u64 {
    let start = Instant::now(); // line 5: fires
    start.elapsed().as_nanos() as u64
}

fn stamp() {
    let _ = std::time::SystemTime::now(); // line 10: fires
}

fn roll() -> u64 {
    thread_rng().next_u64() // line 14: fires
}
