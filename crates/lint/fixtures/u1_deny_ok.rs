//! U1 fixture: `#![deny(unsafe_code)]` is acceptable when a comment
//! adjacent above the attribute justifies why `forbid` is not used.

// deny, not forbid: the counting allocator needs #[allow(unsafe_code)].
#![deny(unsafe_code)]

fn clean() {}
