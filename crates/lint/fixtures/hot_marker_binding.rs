// Regression: doc comments and attributes between `lint:hot_path` and
// its `fn` must not unbind the marker.

struct W {
    v: Vec<u64>,
}

impl W {
    // lint:hot_path
    /// Doc comment between the marker and the fn.
    #[inline]
    #[allow(dead_code)]
    fn hot(&mut self, x: u64) {
        self.v.push(x); // line 14: fires — the marker bound through both
    }
}
