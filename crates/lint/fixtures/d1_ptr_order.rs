//! D1 fixture: pointer values cast to integers (nondeterministic
//! ordering/hashing seed).

fn key_of(x: &u32) -> usize {
    (x as *const u32) as usize // line 5: fires
}

fn sort_by_address(mut items: Vec<&u32>) -> Vec<&u32> {
    items.sort_by_key(|p| p.as_ptr() as usize); // line 9: fires
    items
}

fn honest_integer_cast(n: u32) -> usize {
    n as usize // fine: no pointer production nearby
}
