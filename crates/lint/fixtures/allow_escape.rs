//! L0 fixture: allow-escape mechanics.
//! A reasoned `lint:allow` suppresses its rule; a reasonless one is
//! itself a diagnostic (L0) and suppresses nothing.

// lint:allow(D1) -- bounded map rebuilt from a sorted source each tick
use std::collections::HashMap; // fine: waived with a reason

// lint:allow(D1)
use std::collections::HashSet; // line 9: D1 still fires; line 8 is an L0

// lint:allow(D1) -- signature echo, keys drained in sorted order
fn uses(m: HashMap<u8, u8>, s: HashSet<u8>) -> usize {
    m.len() + s.len()
}
