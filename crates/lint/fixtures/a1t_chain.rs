// A1-T: the hot root is allocation-free itself; the violation sits two
// calls deep and the diagnostic carries the root → site chain.

struct Pool {
    items: Vec<u64>,
}

impl Pool {
    // lint:hot_path
    fn root(&mut self, v: u64) {
        self.middle(v);
    }

    fn middle(&mut self, v: u64) {
        self.leaf(v);
    }

    fn leaf(&mut self, v: u64) {
        self.items.push(v); // line 19: fires, chain root → middle → leaf
    }

    // lint:hot_path
    fn pruned_root(&mut self, v: u64) {
        // lint:allow(A1) -- the cold edge below is pruned; leaf is not
        // scanned from this root.
        self.leaf(v);
    }
}
