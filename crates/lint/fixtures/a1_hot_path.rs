//! A1 fixture: allocating calls inside `lint:hot_path` functions.

// lint:hot_path
fn send_one(queue: &mut Vec<u8>, byte: u8) {
    queue.push(byte); // line 5: fires (.push)
    let copy = queue.to_vec(); // line 6: fires (.to_vec)
    let boxed = Box::new(copy); // line 7: fires (Box::new)
    let msg = format!("{boxed:?}"); // line 8: fires (format!)
    let s = String::from(msg); // line 9: fires (String::from)
    let v: Vec<u8> = s.bytes().collect(); // line 10: fires (.collect)
    let w = vec![0u8; 4]; // line 11: fires (vec!)
    let fresh = Vec::new(); // line 12: fires (Vec::new)
    drop((v, w, fresh));
}

// lint:hot_path
fn allocation_free(buf: &mut [u8], val: u8) -> u64 {
    buf[0] = val; // fine: writes in place
    buf.iter().map(|&b| u64::from(b)).sum() // fine: no allocation
}

fn cold_path(queue: &mut Vec<u8>) {
    queue.push(1); // fine: not marked hot
    let _ = queue.to_vec(); // fine: not marked hot
}

// lint:hot_path
fn escaped(queue: &mut Vec<u8>) {
    // lint:allow(A1) -- capacity retained across calls; amortized zero
    queue.push(9); // fine: waived with a reason
}
