//! U1 fixture: crate root missing `#![forbid(unsafe_code)]`.
//! Linted with `crate_root = true`, this file fires at line 1 because no
//! `#![forbid(unsafe_code)]` / `#![deny(unsafe_code)]` attribute is present.

fn nothing_else_wrong() {}
