//! D1 fixture: iteration-order containers in a simulation crate.
use std::collections::HashMap; // line 2: fires
use std::collections::BTreeMap; // fine

struct S {
    order_leak: HashMap<u64, u64>, // line 6: fires
    ordered: BTreeMap<u64, u64>,
}

fn hash_set_too() {
    let mut s = std::collections::HashSet::new(); // line 11: fires
    s.insert(1u64);
}

// Strings and comments never fire: "HashMap" / HashMap.
fn innocuous() {
    let msg = "HashMap is banned";
    let _ = msg;
}

#[cfg(test)]
mod tests {
    // Test code may hash freely.
    use std::collections::HashMap;

    #[test]
    fn hashing_in_tests_is_fine() {
        let _ = HashMap::<u8, u8>::new();
    }
}
