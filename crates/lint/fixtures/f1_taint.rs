// F1: user-controlled offsets must flow through a `lint:checks(F1)`
// sanitizer before indexing physical memory — with one, the same shape
// is clean.

struct PhysMemory;

impl PhysMemory {
    fn write_u64(&mut self, _pa: u64, _v: u64) {}
    fn read_u64(&self, _pa: u64) -> u64 {
        0
    }
}

struct Mmu;

impl Mmu {
    // lint:checks(F1) -- stands in for the real translate: the returned
    // address has passed the mapping and privilege checks.
    fn translate(&self, va: u64) -> u64 {
        va
    }
}

struct Core {
    mem: PhysMemory,
    mmu: Mmu,
    slots: [u64; 8],
}

impl Core {
    fn store(&mut self, va: u64, value: u64) {
        self.mem.write_u64(va, value); // line 32: fires, va unsanitized
    }

    fn load(&mut self, va: u64) -> u64 {
        let pa = self.mmu.translate(va);
        self.mem.read_u64(pa) // clean: pa came out of the sanitizer
    }

    fn mmio_load(&mut self, offset: u64) -> u64 {
        self.slots[offset as usize] // line 41: fires, raw tainted index
    }
}
