//! Workspace discovery and the whole-repo lint drive.

use std::fs;
use std::io;
use std::path::{Path, PathBuf};

use crate::config::FileContext;
use crate::diag::Diagnostic;
use crate::rules::lint_source;

/// Lints every `crates/*/src/**/*.rs` file under `root` (the workspace
/// root), returning all diagnostics sorted by file and line.
///
/// # Errors
///
/// Propagates I/O errors from directory walking or file reads.
pub fn lint_workspace(root: &Path) -> io::Result<Vec<Diagnostic>> {
    let mut files = Vec::new();
    let crates_dir = root.join("crates");
    for entry in fs::read_dir(&crates_dir)? {
        let src = entry?.path().join("src");
        if src.is_dir() {
            collect_rs_files(&src, &mut files)?;
        }
    }
    files.sort();

    let mut diags = Vec::new();
    for path in files {
        let rel = path.strip_prefix(root).unwrap_or(&path).to_string_lossy().replace('\\', "/");
        let src = fs::read_to_string(&path)?;
        diags.extend(lint_source(&rel, &src, &FileContext::for_path(&rel)));
    }
    diags.sort_by(|a, b| (&a.file, a.line, a.rule).cmp(&(&b.file, b.line, b.rule)));
    Ok(diags)
}

fn collect_rs_files(dir: &Path, out: &mut Vec<PathBuf>) -> io::Result<()> {
    for entry in fs::read_dir(dir)? {
        let path = entry?.path();
        if path.is_dir() {
            collect_rs_files(&path, out)?;
        } else if path.extension().is_some_and(|e| e == "rs") {
            out.push(path);
        }
    }
    Ok(())
}

/// Finds the workspace root: walks up from `start` to the first
/// directory whose `Cargo.toml` declares `[workspace]`.
pub fn find_workspace_root(start: &Path) -> Option<PathBuf> {
    let mut dir = Some(start.to_path_buf());
    while let Some(d) = dir {
        let manifest = d.join("Cargo.toml");
        if let Ok(text) = fs::read_to_string(&manifest) {
            if text.contains("[workspace]") {
                return Some(d);
            }
        }
        dir = d.parent().map(Path::to_path_buf);
    }
    None
}
