//! Workspace discovery and the whole-repo lint drive.

use std::fs;
use std::io;
use std::path::{Path, PathBuf};

use crate::config::FileContext;
use crate::diag::Diagnostic;
use crate::graph::{SourceInput, Workspace};
use crate::rules::analyze;

/// Reads every `crates/*/src/**/*.rs` file under `root` into analysis
/// inputs, sorted by path (test directories and fixtures are outside
/// `src/` and are never collected).
///
/// # Errors
///
/// Propagates I/O errors from directory walking or file reads.
pub fn collect_workspace(root: &Path) -> io::Result<Vec<SourceInput>> {
    let mut files = Vec::new();
    let crates_dir = root.join("crates");
    for entry in fs::read_dir(&crates_dir)? {
        let src = entry?.path().join("src");
        if src.is_dir() {
            collect_rs_files(&src, &mut files)?;
        }
    }
    files.sort();

    let mut inputs = Vec::with_capacity(files.len());
    for path in files {
        let rel = path.strip_prefix(root).unwrap_or(&path).to_string_lossy().replace('\\', "/");
        let src = fs::read_to_string(&path)?;
        let ctx = FileContext::for_path(&rel);
        inputs.push(SourceInput { path: rel, src, ctx });
    }
    Ok(inputs)
}

/// Lints the whole workspace under `root`: every file is parsed into one
/// symbol table, then all rules — including the transitive A1-T/P1-T
/// walks and the F1 taint pass — run over the shared call graph.
///
/// # Errors
///
/// Propagates I/O errors from directory walking or file reads.
pub fn lint_workspace(root: &Path) -> io::Result<Vec<Diagnostic>> {
    Ok(analyze(collect_workspace(root)?))
}

/// Renders the `--callgraph` dump for the workspace under `root`: every
/// `lint:hot_path` root with its reachable call set.
///
/// # Errors
///
/// Propagates I/O errors from directory walking or file reads.
pub fn render_workspace_callgraph(root: &Path) -> io::Result<String> {
    Ok(Workspace::build(collect_workspace(root)?).render_callgraph())
}

fn collect_rs_files(dir: &Path, out: &mut Vec<PathBuf>) -> io::Result<()> {
    for entry in fs::read_dir(dir)? {
        let path = entry?.path();
        if path.is_dir() {
            collect_rs_files(&path, out)?;
        } else if path.extension().is_some_and(|e| e == "rs") {
            out.push(path);
        }
    }
    Ok(())
}

/// Finds the workspace root: walks up from `start` to the first
/// directory whose `Cargo.toml` declares `[workspace]`.
pub fn find_workspace_root(start: &Path) -> Option<PathBuf> {
    let mut dir = Some(start.to_path_buf());
    while let Some(d) = dir {
        let manifest = d.join("Cargo.toml");
        if let Ok(text) = fs::read_to_string(&manifest) {
            if text.contains("[workspace]") {
                return Some(d);
            }
        }
        dir = d.parent().map(Path::to_path_buf);
    }
    None
}
