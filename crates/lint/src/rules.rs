//! The rule engine: D1 determinism, A1 transitive zero-alloc, U1 unsafe
//! audit, P1 transitive panic discipline, F1 protection flow.
//!
//! Every rule works on lexed token streams plus comment markers; the v2
//! engine adds the workspace call graph (`graph.rs`), so A1 and P1 now
//! check everything *reachable* from a `lint:hot_path` root, and F1
//! (`taint.rs`) gates user/packet-controlled values at protection sinks.
//! No type solving is involved — each invariant was designed to be
//! *structurally* visible (the same trick the paper plays: turn a
//! runtime property into something a dumb, fast check can reject). Test
//! code (`#[cfg(test)]` modules, `#[test]` functions) is excluded
//! everywhere — tests may hash, panic and allocate freely.

use crate::config::FileContext;
use crate::diag::{Diagnostic, Markers, Rule, JUSTIFY_WINDOW};
use crate::graph::{FnId, SourceInput, Workspace};
use crate::lexer::Token;
use crate::taint::f1_taint;

/// Lints one file's source under `ctx`, returning every diagnostic that
/// is not covered by an allow-escape. `file` is the path used in
/// diagnostics (repo-relative by convention). Cross-file edges resolve
/// only in whole-workspace runs ([`analyze`]); a single file is its own
/// one-unit workspace.
pub fn lint_source(file: &str, src: &str, ctx: &FileContext) -> Vec<Diagnostic> {
    analyze(vec![SourceInput { path: file.to_owned(), src: src.to_owned(), ctx: *ctx }])
}

/// Runs every rule over a set of files as one workspace: per-file local
/// rules (L0, D1, U1, P1), then the call-graph passes (A1-T, P1-T) and
/// the F1 taint pass. Returns allow-filtered diagnostics sorted by
/// `(file, line, rule)`.
pub fn analyze(inputs: Vec<SourceInput>) -> Vec<Diagnostic> {
    let ws = Workspace::build(inputs);
    let mut diags = Vec::new();

    for unit in &ws.units {
        let mut local = unit.markers.malformed(&unit.path);
        if unit.ctx.determinism {
            d1_determinism(&unit.path, &unit.tokens, &unit.mask, &mut local);
        }
        u1_unsafe(&unit.path, &unit.tokens, &unit.mask, &unit.markers, &unit.ctx, &mut local);
        if unit.ctx.delivery_path {
            p1_scan(&unit.path, &unit.tokens, &unit.mask, 0, &unit.markers, None, &mut local);
        }
        local.retain(|d| d.rule == Rule::L0 || !unit.markers.allowed(d.rule, d.line));
        diags.append(&mut local);
    }

    a1_transitive(&ws, &mut diags);
    p1_transitive(&ws, &mut diags);
    f1_taint(&ws, &mut diags);

    // A panic can be flagged both locally (its file is on the delivery
    // path) and transitively (reached from a root): keep the transitive
    // diagnostic — its call chain says *why* the line matters.
    let mut keep: Vec<Diagnostic> = Vec::with_capacity(diags.len());
    for d in diags {
        match keep.iter_mut().find(|k| (k.rule, &k.file, k.line) == (d.rule, &d.file, d.line)) {
            Some(k) => {
                if d.message.contains("call chain:") {
                    *k = d;
                }
            }
            None => keep.push(d),
        }
    }
    keep.sort_by(|a, b| (&a.file, a.line, a.rule).cmp(&(&b.file, b.line, b.rule)));
    keep
}

/// Marks every token inside a `#[cfg(test)]` or `#[test]` item.
///
/// On seeing such an attribute, everything from the attribute to the
/// closing brace of the next braced block is masked. That covers the two
/// shapes this workspace uses: `#[cfg(test)] mod tests { … }` and
/// `#[test] fn case() { … }` (intervening attributes like
/// `#[should_panic]` sit before the brace and are masked with it).
pub fn test_region_mask(tokens: &[Token]) -> Vec<bool> {
    let mut mask = vec![false; tokens.len()];
    let mut i = 0usize;
    while i < tokens.len() {
        if tokens[i].is_punct('#') && tokens.get(i + 1).is_some_and(|t| t.is_punct('[')) {
            let close = matching(tokens, i + 1, '[', ']');
            if attr_is_test(&tokens[i + 2..close.min(tokens.len())]) {
                // Mask attribute + item through its closing brace.
                let mut j = close;
                while j < tokens.len() && !tokens[j].is_punct('{') {
                    j += 1;
                }
                let end = matching(tokens, j, '{', '}');
                for slot in mask.iter_mut().take(end.min(tokens.len())).skip(i) {
                    *slot = true;
                }
                i = end;
                continue;
            }
        }
        i += 1;
    }
    mask
}

/// Index just past the delimiter that closes `open` at `tokens[start]`
/// (which must be the opening delimiter); `tokens.len()` if unclosed.
fn matching(tokens: &[Token], start: usize, open: char, close: char) -> usize {
    let mut depth = 0usize;
    for (i, t) in tokens.iter().enumerate().skip(start) {
        if t.is_punct(open) {
            depth += 1;
        } else if t.is_punct(close) {
            depth -= 1;
            if depth == 0 {
                return i + 1;
            }
        }
    }
    tokens.len()
}

/// True for `#[test]` or `#[cfg(test)]`-style attribute token bodies
/// (`cfg(test)`, `cfg(all(test, …))`) — but not `#[cfg(not(test))]`,
/// which guards *non*-test code.
fn attr_is_test(body: &[Token]) -> bool {
    if body.first().is_some_and(|t| t.is_ident("test")) {
        return true;
    }
    body.windows(3).any(|w| {
        w[0].is_ident("test")
            && !w[0].is_punct('(')
            && (w[1].is_punct(')') || w[1].is_punct(','))
            && body.iter().any(|t| t.is_ident("cfg"))
    }) && !body.iter().any(|t| t.is_ident("not"))
}

// ---------------------------------------------------------------------
// D1 — determinism
// ---------------------------------------------------------------------

/// Identifiers whose mere presence in a simulation crate breaks the
/// bit-identical-timeline contract, with the reason reported.
const D1_BANNED_IDENTS: &[(&str, &str)] = &[
    ("HashMap", "iteration order is randomized per process; use BTreeMap or Vec"),
    ("HashSet", "iteration order is randomized per process; use BTreeSet or Vec"),
    ("Instant", "wall-clock time leaks host speed into the simulation; use SimTime"),
    ("SystemTime", "wall-clock time leaks host state into the simulation; use SimTime"),
    ("thread_rng", "OS-seeded randomness is unreproducible; use the in-tree SplitMix64"),
];

fn d1_determinism(file: &str, tokens: &[Token], mask: &[bool], out: &mut Vec<Diagnostic>) {
    for (i, t) in tokens.iter().enumerate() {
        if mask[i] {
            continue;
        }
        if let Some(name) = t.ident() {
            if let Some((_, why)) = D1_BANNED_IDENTS.iter().find(|(n, _)| *n == name) {
                out.push(Diagnostic {
                    rule: Rule::D1,
                    file: file.to_owned(),
                    line: t.line,
                    message: format!("`{name}` in a determinism-critical crate: {why}"),
                });
            }
        }
        // Pointer-value ordering: a pointer cast to an integer makes the
        // allocator's address choices observable. Flag `as usize`/`as
        // u64`/… when a raw-pointer production (`as *const`/`as *mut` or
        // `.as_ptr()`/`.as_mut_ptr()`) appears shortly before it.
        if t.is_ident("as")
            && tokens.get(i + 1).is_some_and(|n| {
                ["usize", "u64", "isize", "i64", "u128"].iter().any(|ty| n.is_ident(ty))
            })
            && window_has_pointer_production(&tokens[i.saturating_sub(8)..i])
        {
            out.push(Diagnostic {
                rule: Rule::D1,
                file: file.to_owned(),
                line: t.line,
                message: "pointer value cast to an integer: addresses vary run to run, so any \
                          ordering or hashing built on them is nondeterministic"
                    .to_owned(),
            });
        }
    }
}

fn window_has_pointer_production(window: &[Token]) -> bool {
    window.iter().enumerate().any(|(j, t)| {
        (t.is_punct('*')
            && window.get(j + 1).is_some_and(|n| n.is_ident("const") || n.is_ident("mut"))
            && j > 0
            && window[j - 1].is_ident("as"))
            || t.is_ident("as_ptr")
            || t.is_ident("as_mut_ptr")
    })
}

// ---------------------------------------------------------------------
// A1 — zero-alloc hot paths, transitively
// ---------------------------------------------------------------------

/// Method names that (may) allocate, banned inside hot-path functions
/// and everything they reach.
const A1_BANNED_METHODS: &[&str] =
    &["push", "to_vec", "collect", "to_string", "insert", "extend", "reserve", "with_capacity"];

/// A1-T: walk the call graph from every `lint:hot_path` root and scan
/// each reachable body. A `lint:allow(A1)` covering a *call site* prunes
/// traversal past that edge (the annotation vouches for the callee); one
/// covering an allocation site waives that site as before. Diagnostics
/// in callees carry the root→site call chain.
fn a1_transitive(ws: &Workspace, out: &mut Vec<Diagnostic>) {
    let reached =
        ws.reachable(ws.hot_roots(), &|caller, line| ws.allowed(caller.0, Rule::A1, line));
    for (id, chain) in reached {
        let unit = &ws.units[id.0];
        let f = &unit.items.fns[id.1];
        let Some((b0, b1)) = f.body else { continue };
        let b1 = b1.min(unit.tokens.len());
        let mut local = Vec::new();
        a1_scan_body(&unit.path, &unit.tokens[b0..b1], &unit.mask[b0..b1], &mut local);
        local.retain(|d| !unit.markers.allowed(Rule::A1, d.line));
        if chain.len() > 1 {
            let chain_text = ws.chain_text(&chain);
            for d in &mut local {
                d.message.push_str(&format!("; call chain: {chain_text}"));
            }
        }
        out.append(&mut local);
    }
}

fn a1_scan_body(file: &str, body: &[Token], mask: &[bool], out: &mut Vec<Diagnostic>) {
    let mut flag = |line: u32, what: &str| {
        out.push(Diagnostic {
            rule: Rule::A1,
            file: file.to_owned(),
            line,
            message: format!(
                "`{what}` inside a `lint:hot_path` function may heap-allocate; restructure to \
                 reuse capacity, or waive with `// lint:allow(A1) -- <why it is allocation-free>`"
            ),
        });
    };
    for (i, t) in body.iter().enumerate() {
        if mask.get(i).copied().unwrap_or(false) {
            continue;
        }
        let next = body.get(i + 1);
        let next2 = body.get(i + 2);
        // Constructor / macro forms.
        if (t.is_ident("Vec") || t.is_ident("Box") || t.is_ident("String"))
            && next.is_some_and(|n| n.is_punct(':'))
            && next2.is_some_and(|n| n.is_punct(':'))
        {
            if let Some(m) = body.get(i + 3).and_then(Token::ident) {
                if ["new", "from", "with_capacity", "from_utf8"].contains(&m) {
                    flag(t.line, &format!("{}::{m}", t.ident().unwrap_or_default()));
                }
            }
        }
        if (t.is_ident("vec") || t.is_ident("format")) && next.is_some_and(|n| n.is_punct('!')) {
            flag(t.line, &format!("{}!", t.ident().unwrap_or_default()));
        }
        // Allocating method calls: `.push(…)`, `.collect::<…>()`, …
        if t.is_punct('.') {
            if let Some(name) = next.and_then(Token::ident) {
                if A1_BANNED_METHODS.contains(&name)
                    && body.get(i + 2).is_some_and(|n| n.is_punct('(') || n.is_punct(':'))
                {
                    flag(next.map_or(t.line, |n| n.line), &format!(".{name}()"));
                }
            }
        }
    }
}

// ---------------------------------------------------------------------
// U1 — unsafe audit
// ---------------------------------------------------------------------

fn u1_unsafe(
    file: &str,
    tokens: &[Token],
    mask: &[bool],
    markers: &Markers,
    ctx: &FileContext,
    out: &mut Vec<Diagnostic>,
) {
    if ctx.crate_root {
        u1_crate_root_attr(file, tokens, markers, out);
    }
    for (i, t) in tokens.iter().enumerate() {
        if mask[i] || !t.is_ident("unsafe") {
            continue;
        }
        if !markers.has_safety(t.line) {
            out.push(Diagnostic {
                rule: Rule::U1,
                file: file.to_owned(),
                line: t.line,
                message: format!(
                    "`unsafe` without a `// SAFETY:` comment within {JUSTIFY_WINDOW} lines \
                     stating why the contract holds"
                ),
            });
        }
    }
}

/// Crate roots must carry `#![forbid(unsafe_code)]`, or
/// `#![deny(unsafe_code)]` with an adjacent comment justifying the
/// weaker level.
fn u1_crate_root_attr(file: &str, tokens: &[Token], markers: &Markers, out: &mut Vec<Diagnostic>) {
    for (i, t) in tokens.iter().enumerate() {
        let is_inner_attr = t.is_punct('#')
            && tokens.get(i + 1).is_some_and(|n| n.is_punct('!'))
            && tokens.get(i + 2).is_some_and(|n| n.is_punct('['));
        if !is_inner_attr {
            continue;
        }
        let close = matching(tokens, i + 2, '[', ']');
        let body = &tokens[i + 3..close.min(tokens.len())];
        if !body.iter().any(|t| t.is_ident("unsafe_code")) {
            continue;
        }
        if body.first().is_some_and(|t| t.is_ident("forbid")) {
            return; // the strong form needs no justification
        }
        if body.first().is_some_and(|t| t.is_ident("deny")) {
            // A plain comment immediately above the attribute counts as
            // the justification.
            if !comment_adjacent_above(markers, t.line) {
                out.push(Diagnostic {
                    rule: Rule::U1,
                    file: file.to_owned(),
                    line: t.line,
                    message: "`#![deny(unsafe_code)]` without a justifying comment above it; \
                              either upgrade to `forbid` or say why `deny` is needed"
                        .to_owned(),
                });
            }
            return;
        }
    }
    out.push(Diagnostic {
        rule: Rule::U1,
        file: file.to_owned(),
        line: 1,
        message: "crate root lacks `#![forbid(unsafe_code)]` (or `#![deny(unsafe_code)]` with a \
                  justifying comment)"
            .to_owned(),
    });
}

/// Any comment on one of the few lines directly above `line`?
fn comment_adjacent_above(markers: &Markers, line: u32) -> bool {
    // Markers only records *marker* comments; an arbitrary justifying
    // comment is found through the raw comment list the caller lexed.
    // To keep the Markers API small, U1 re-checks via the all_comments
    // list stashed at scan time.
    markers.comment_lines.iter().any(|&l| l < line && line - l <= JUSTIFY_WINDOW)
}

// ---------------------------------------------------------------------
// P1 — panic discipline, transitively
// ---------------------------------------------------------------------

/// P1-T: panics *reachable* from delivery-path hot roots are held to the
/// same `// INVARIANT:` standard as panics written inline. Roots are the
/// `lint:hot_path` fns of delivery-path files; `lint:allow(P1)` at a
/// call site prunes the edge.
fn p1_transitive(ws: &Workspace, out: &mut Vec<Diagnostic>) {
    let roots: Vec<FnId> =
        ws.hot_roots().iter().copied().filter(|&id| ws.units[id.0].ctx.delivery_path).collect();
    let reached = ws.reachable(&roots, &|caller, line| ws.allowed(caller.0, Rule::P1, line));
    for (id, chain) in reached {
        let unit = &ws.units[id.0];
        let f = &unit.items.fns[id.1];
        let Some((b0, b1)) = f.body else { continue };
        let b1 = b1.min(unit.tokens.len());
        let chain_text = (chain.len() > 1).then(|| ws.chain_text(&chain));
        let mut local = Vec::new();
        p1_scan(
            &unit.path,
            &unit.tokens[..b1],
            &unit.mask[..b1],
            b0,
            &unit.markers,
            chain_text.as_deref(),
            &mut local,
        );
        local.retain(|d| !unit.markers.allowed(Rule::P1, d.line));
        out.append(&mut local);
    }
}

/// Scans `tokens[start..]` for unjustified panic sites. `chain` (when
/// present) is appended to each message — the root→site path for
/// transitive findings.
fn p1_scan(
    file: &str,
    tokens: &[Token],
    mask: &[bool],
    start: usize,
    markers: &Markers,
    chain: Option<&str>,
    out: &mut Vec<Diagnostic>,
) {
    for (i, t) in tokens.iter().enumerate().skip(start) {
        if mask[i] {
            continue;
        }
        let flagged = (t.is_ident("unwrap") || t.is_ident("expect"))
            && i > 0
            && tokens[i - 1].is_punct('.')
            && tokens.get(i + 1).is_some_and(|n| n.is_punct('('))
            || (t.is_ident("panic") || t.is_ident("unreachable"))
                && tokens.get(i + 1).is_some_and(|n| n.is_punct('!'));
        if flagged && !markers.has_invariant(t.line) {
            let what = t.ident().unwrap_or_default();
            let mut message = format!(
                "`{what}` on the delivery path without an `// INVARIANT:` comment within \
                 {JUSTIFY_WINDOW} lines stating why it cannot fire"
            );
            if let Some(c) = chain {
                message.push_str(&format!("; call chain: {c}"));
            }
            out.push(Diagnostic { rule: Rule::P1, file: file.to_owned(), line: t.line, message });
        }
    }
}
