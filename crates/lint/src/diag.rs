//! Diagnostics, rule identifiers and the comment-marker layer
//! (`lint:allow`, `lint:hot_path`, `SAFETY:`, `INVARIANT:`).

use std::fmt;

use crate::lexer::{Comment, Lexed};

/// The four structural invariants this linter enforces (plus `L0`, the
/// meta-rule that escape hatches themselves are well-formed).
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub enum Rule {
    /// Malformed linter marker (an allow-escape without a reason).
    L0,
    /// Determinism: no iteration-order / wall-clock / RNG / pointer-value
    /// leaks in simulation crates.
    D1,
    /// Zero-alloc: no allocating calls inside `// lint:hot_path` functions.
    A1,
    /// Unsafe audit: crate roots forbid/deny `unsafe_code`; every `unsafe`
    /// carries a `// SAFETY:` justification.
    U1,
    /// Panic discipline: no `unwrap`/`expect`/`panic!` in delivery-path
    /// code without an `// INVARIANT:` justification.
    P1,
    /// Protection flow: user/packet-controlled values must pass a
    /// `// lint:checks(F1)` sanitizer before indexing `PhysMemory`,
    /// frame tables, or NIPT slots.
    F1,
}

impl Rule {
    /// The machine-readable rule id (`D1`, `A1`, `U1`, `P1`, `F1`, `L0`).
    pub fn id(self) -> &'static str {
        match self {
            Rule::L0 => "L0",
            Rule::D1 => "D1",
            Rule::A1 => "A1",
            Rule::U1 => "U1",
            Rule::P1 => "P1",
            Rule::F1 => "F1",
        }
    }

    /// Parses a rule id as written inside `lint:allow(...)`.
    pub fn parse(s: &str) -> Option<Rule> {
        match s.trim() {
            "L0" => Some(Rule::L0),
            "D1" => Some(Rule::D1),
            "A1" => Some(Rule::A1),
            "U1" => Some(Rule::U1),
            "P1" => Some(Rule::P1),
            "F1" => Some(Rule::F1),
            _ => None,
        }
    }
}

impl fmt::Display for Rule {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.id())
    }
}

/// One finding: rule, location, human-readable message.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Diagnostic {
    /// Which rule fired.
    pub rule: Rule,
    /// Repo-relative path of the offending file.
    pub file: String,
    /// 1-based line.
    pub line: u32,
    /// What went wrong and how to fix or escape it.
    pub message: String,
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}:{}: [{}] {}", self.file, self.line, self.rule, self.message)
    }
}

/// A parsed `// lint:allow(<rule>) -- <reason>` escape.
#[derive(Clone, Debug)]
pub struct Allow {
    /// The rule being waived.
    pub rule: Rule,
    /// Line the comment sits on.
    pub line: u32,
    /// Whether a `-- reason` was supplied (required).
    pub has_reason: bool,
}

/// The markers extracted from one file's comments.
#[derive(Clone, Debug, Default)]
pub struct Markers {
    /// `lint:allow` escapes.
    pub allows: Vec<Allow>,
    /// Lines bearing `lint:hot_path` (each marks the next `fn`).
    pub hot_paths: Vec<u32>,
    /// Lines bearing `lint:checks(F1)`. Above a `fn`, the fn is an F1
    /// sanitizer; inside a body, the covered statement is a hand-written
    /// bounds check that cleanses the values it mentions.
    pub checks: Vec<u32>,
    /// Lines whose comment contains `SAFETY:`.
    pub safety: Vec<u32>,
    /// Lines whose comment contains `INVARIANT:`.
    pub invariant: Vec<u32>,
    /// Every comment's starting line (U1 uses this to accept an arbitrary
    /// justifying comment above a `deny(unsafe_code)` attribute).
    pub comment_lines: Vec<u32>,
}

/// How many lines above a flagged token a justification comment
/// (`SAFETY:` / `INVARIANT:`) or allow-escape may sit and still cover
/// it: the flagged line itself plus up to three preceding lines (a
/// short comment block above a multi-line expression).
pub const JUSTIFY_WINDOW: u32 = 3;

impl Markers {
    /// Extracts all markers from a file's comments.
    pub fn scan(lexed: &Lexed) -> Markers {
        let mut m = Markers::default();
        for c in &lexed.comments {
            m.comment_lines.push(c.line);
            scan_comment(c, &mut m);
        }
        m
    }

    /// True if `rule` is waived at `line` — an allow-escape on the same
    /// line or within the justification window above it.
    pub fn allowed(&self, rule: Rule, line: u32) -> bool {
        self.allows.iter().any(|a| {
            a.rule == rule && a.has_reason && a.line <= line && line - a.line <= JUSTIFY_WINDOW
        })
    }

    /// True if a `SAFETY:` comment covers `line`.
    pub fn has_safety(&self, line: u32) -> bool {
        covers(&self.safety, line)
    }

    /// True if an `INVARIANT:` comment covers `line`.
    pub fn has_invariant(&self, line: u32) -> bool {
        covers(&self.invariant, line)
    }

    /// Diagnostics for malformed markers (allow without a reason).
    pub fn malformed(&self, file: &str) -> Vec<Diagnostic> {
        self.allows
            .iter()
            .filter(|a| !a.has_reason)
            .map(|a| Diagnostic {
                rule: Rule::L0,
                file: file.to_owned(),
                line: a.line,
                message: format!(
                    "lint:allow({}) without a reason; write `// lint:allow({}) -- <why>`",
                    a.rule, a.rule
                ),
            })
            .collect()
    }
}

/// Renders diagnostics as a JSON array (for the CI artifact). Hand
/// rolled — the linter is deliberately dependency-free.
pub fn to_json(diags: &[Diagnostic]) -> String {
    let mut out = String::from("[");
    for (i, d) in diags.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!(
            "\n  {{\"rule\": \"{}\", \"file\": \"{}\", \"line\": {}, \"message\": \"{}\"}}",
            d.rule,
            json_escape(&d.file),
            d.line,
            json_escape(&d.message)
        ));
    }
    out.push_str(if diags.is_empty() { "]" } else { "\n]" });
    out.push('\n');
    out
}

fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

fn covers(marks: &[u32], line: u32) -> bool {
    marks.iter().any(|&m| m <= line && line - m <= JUSTIFY_WINDOW)
}

fn scan_comment(c: &Comment, m: &mut Markers) {
    let text = c.text.trim();
    if let Some(rest) = text.strip_prefix("lint:allow(") {
        if let Some(close) = rest.find(')') {
            if let Some(rule) = Rule::parse(&rest[..close]) {
                let tail = rest[close + 1..].trim();
                let has_reason =
                    tail.strip_prefix("--").is_some_and(|reason| !reason.trim().is_empty());
                m.allows.push(Allow { rule, line: c.line, has_reason });
            }
        }
    }
    if text.starts_with("lint:hot_path") {
        m.hot_paths.push(c.line);
    }
    if text.starts_with("lint:checks(F1)") {
        m.checks.push(c.line);
    }
    if text.contains("SAFETY:") {
        m.safety.push(c.line);
    }
    if text.contains("INVARIANT:") {
        m.invariant.push(c.line);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    #[test]
    fn allow_with_reason_parses_and_covers_nearby_lines() {
        let lexed = lex("// lint:allow(A1) -- amortized, capacity retained\nfoo.push(x);\n");
        let m = Markers::scan(&lexed);
        assert!(m.allowed(Rule::A1, 1));
        assert!(m.allowed(Rule::A1, 2));
        assert!(!m.allowed(Rule::A1, 9));
        assert!(!m.allowed(Rule::P1, 2), "an allow names exactly one rule");
        assert!(m.malformed("f.rs").is_empty());
    }

    #[test]
    fn allow_without_reason_is_malformed() {
        let lexed = lex("// lint:allow(D1)\nuse std::collections::HashMap;\n");
        let m = Markers::scan(&lexed);
        assert!(!m.allowed(Rule::D1, 2), "a reasonless allow waives nothing");
        let bad = m.malformed("f.rs");
        assert_eq!(bad.len(), 1);
        assert_eq!(bad[0].rule, Rule::L0);
    }

    #[test]
    fn safety_and_invariant_markers_cover_a_window() {
        let lexed =
            lex("// SAFETY: delegates to System\nunsafe { x() }\n\n// INVARIANT: q\ny();\n");
        let m = Markers::scan(&lexed);
        assert!(m.has_safety(2));
        assert!(!m.has_safety(40));
        assert!(m.has_invariant(5));
    }

    #[test]
    fn hot_path_marker_records_its_line() {
        let lexed = lex("// lint:hot_path\nfn fast() {}\n");
        let m = Markers::scan(&lexed);
        assert_eq!(m.hot_paths, vec![1]);
    }
}
