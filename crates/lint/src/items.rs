//! Item-level parse: functions, impl owners, struct fields.
//!
//! The lexer gives a flat token stream; this layer recovers just enough
//! *structure* for the workspace analyses — every `fn` with its body
//! token range, the `impl` type that owns it, its parameter and return
//! types (first path ident only — enough for the heuristic resolver in
//! `graph.rs`), and every struct's field types. No expression grammar is
//! parsed; bodies stay opaque token ranges the rule passes scan.
//!
//! Marker binding also lives here: a `// lint:hot_path` (or
//! `// lint:checks(F1)`) comment binds to the **next parsed `fn` item**
//! after its line, so doc comments and `#[…]` attributes between the
//! marker and the `fn` can never unbind it (they produce no `fn` item).

use crate::lexer::{Lexed, Token, TokenKind};

/// One parsed function item.
#[derive(Clone, Debug)]
pub struct FnItem {
    /// The function's name.
    pub name: String,
    /// The `impl` (or `trait`) type the function belongs to, if any.
    pub owner: Option<String>,
    /// The trait being implemented, for `impl Trait for Type` methods.
    pub trait_name: Option<String>,
    /// 1-based line of the `fn` keyword.
    pub sig_line: u32,
    /// Token index of the `fn` keyword.
    pub fn_idx: usize,
    /// Body token range `[open_brace, past_close_brace)`; `None` for
    /// bodiless trait-method declarations.
    pub body: Option<(usize, usize)>,
    /// Parameters in order (receiver excluded).
    pub params: Vec<Param>,
    /// First path ident of the return type, `Option`/`Result` wrappers
    /// skipped (`-> &mut PhysMemory` → `PhysMemory`,
    /// `-> Option<NiptEntry>` → `NiptEntry`).
    pub ret: Option<String>,
    /// Whether the function takes `self`.
    pub has_receiver: bool,
    /// Whether the function sits inside `#[cfg(test)]`/`#[test]` code.
    pub is_test: bool,
}

/// One function parameter: binding name (when the pattern is a plain
/// ident) and the first path ident of its type.
#[derive(Clone, Debug)]
pub struct Param {
    /// The binding name (`None` for destructuring patterns).
    pub name: Option<String>,
    /// First path ident of the type (`&mut FabricShard` → `FabricShard`).
    pub ty: Option<String>,
}

/// One struct definition with its named fields.
#[derive(Clone, Debug)]
pub struct StructItem {
    /// The struct's name.
    pub name: String,
    /// `(field, first path ident of its type)` pairs.
    pub fields: Vec<(String, String)>,
}

/// All items parsed from one file.
#[derive(Clone, Debug, Default)]
pub struct FileItems {
    /// Functions in source order.
    pub fns: Vec<FnItem>,
    /// Struct definitions in source order.
    pub structs: Vec<StructItem>,
}

impl FileItems {
    /// Index of the first `fn` item whose signature line is at or after
    /// `line` — the function a marker comment at `line` binds to.
    /// Attributes and doc comments between the marker and the `fn` are
    /// skipped by construction: only a real `fn` item can win.
    pub fn fn_at_or_after(&self, line: u32) -> Option<usize> {
        self.fns.iter().position(|f| f.sig_line >= line)
    }
}

/// Words that start a `fn` when they precede the keyword.
const FN_QUALIFIERS: &[&str] = &["pub", "const", "unsafe", "async", "extern", "default"];

/// Parses the items of one lexed file. `test_mask` marks tokens inside
/// `#[cfg(test)]`/`#[test]` regions (see `rules::test_region_mask`).
pub fn parse_items(lexed: &Lexed, test_mask: &[bool]) -> FileItems {
    let mut p = Parser { t: &lexed.tokens, mask: test_mask, out: FileItems::default() };
    p.items(0, lexed.tokens.len(), None, None);
    p.out
}

struct Parser<'a> {
    t: &'a [Token],
    mask: &'a [bool],
    out: FileItems,
}

impl Parser<'_> {
    /// Scans `[start, end)` at item level under the given impl/trait
    /// context, descending into `mod`/`impl`/`trait` blocks.
    fn items(&mut self, start: usize, end: usize, owner: Option<&str>, trait_ctx: Option<&str>) {
        let mut i = start;
        while i < end {
            let Some(tok) = self.t.get(i) else { break };
            match tok.ident() {
                Some("fn") => i = self.fn_item(i, end, owner, trait_ctx),
                Some("impl") => i = self.impl_item(i, end),
                Some("trait") => i = self.trait_item(i, end),
                Some("mod") => i = self.mod_item(i, end, owner, trait_ctx),
                Some("struct") => i = self.struct_item(i, end),
                Some("enum") | Some("union") => i = self.skip_braced_or_semi(i, end),
                // `const fn` and `unsafe fn` fall through to the `fn`
                // branch on the next token; bare consts/statics/types
                // skip to their terminating `;` (brace-aware, for
                // `const X: T = { … };`).
                Some("const") | Some("static") | Some("type") | Some("use")
                    if !self.t.get(i + 1).is_some_and(|n| {
                        n.ident().is_some_and(|id| id == "fn" || FN_QUALIFIERS.contains(&id))
                    }) =>
                {
                    i = self.skip_to_semi(i, end);
                }
                _ => {
                    if tok.is_punct('#') {
                        i = self.skip_attr(i, end);
                    } else if tok.is_punct('{') {
                        // An unexpected block (macro output, expression
                        // item): descend — nested fns still get found.
                        i += 1;
                    } else {
                        i += 1;
                    }
                }
            }
        }
    }

    fn fn_item(
        &mut self,
        fn_idx: usize,
        end: usize,
        owner: Option<&str>,
        tr: Option<&str>,
    ) -> usize {
        let sig_line = self.t[fn_idx].line;
        let Some(name) = self.t.get(fn_idx + 1).and_then(Token::ident).map(str::to_owned) else {
            return fn_idx + 1; // `fn` in type position (fn-pointer); skip
        };
        let mut i = fn_idx + 2;
        if self.t.get(i).is_some_and(|t| t.is_punct('<')) {
            i = self.skip_angles(i, end);
        }
        // Parameters.
        let mut params = Vec::new();
        let mut has_receiver = false;
        if self.t.get(i).is_some_and(|t| t.is_punct('(')) {
            let close = matching_paren(self.t, i, end);
            let mut groups = Vec::new();
            split_top_level_commas(&self.t[i + 1..close.saturating_sub(1)], &mut groups);
            for g in groups {
                if g.iter().any(|t| t.is_ident("self")) && params.is_empty() {
                    has_receiver = true;
                    continue;
                }
                params.push(parse_param(g));
            }
            i = close;
        }
        // Return type: tokens between `->` and `{` / `;` / `where`.
        let mut ret = None;
        let mut j = i;
        while j < end {
            let t = &self.t[j];
            if t.is_punct('{') || t.is_punct(';') || t.is_ident("where") {
                break;
            }
            j += 1;
        }
        if self.t[i..j].windows(2).next().is_some() {
            ret = first_type_ident(&self.t[i..j], true);
        }
        // Skip a `where` clause to the body.
        while j < end && !self.t[j].is_punct('{') && !self.t[j].is_punct(';') {
            j += 1;
        }
        let (body, next) = if self.t.get(j).is_some_and(|t| t.is_punct('{')) {
            let e = matching_brace(self.t, j, end);
            (Some((j, e)), e)
        } else {
            (None, j.saturating_add(1).min(end))
        };
        let is_test = self.mask.get(fn_idx).copied().unwrap_or(false);
        self.out.fns.push(FnItem {
            name,
            owner: owner.map(str::to_owned),
            trait_name: tr.map(str::to_owned),
            sig_line,
            fn_idx,
            body,
            params,
            ret,
            has_receiver,
            is_test,
        });
        next
    }

    fn impl_item(&mut self, i: usize, end: usize) -> usize {
        // `impl <generics>? Type {` or `impl <generics>? Trait for Type {`.
        let mut j = i + 1;
        if self.t.get(j).is_some_and(|t| t.is_punct('<')) {
            j = self.skip_angles(j, end);
        }
        let mut open = j;
        while open < end && !self.t[open].is_punct('{') && !self.t[open].is_punct(';') {
            open += 1;
        }
        if !self.t.get(open).is_some_and(|t| t.is_punct('{')) {
            return open.saturating_add(1).min(end);
        }
        // Split the header at a top-level `for` (HRTB `for<` excluded).
        let header = &self.t[j..open];
        let for_pos = header.iter().enumerate().position(|(k, t)| {
            t.is_ident("for") && !header.get(k + 1).is_some_and(|n| n.is_punct('<'))
        });
        let (trait_name, type_toks) = match for_pos {
            Some(k) => (first_type_ident(&header[..k], false), &header[k + 1..]),
            None => (None, header),
        };
        // Stop the self-type at a `where` clause.
        let wh = type_toks.iter().position(|t| t.is_ident("where")).unwrap_or(type_toks.len());
        let owner = first_type_ident(&type_toks[..wh], false);
        let close = matching_brace(self.t, open, end);
        self.items(open + 1, close.saturating_sub(1), owner.as_deref(), trait_name.as_deref());
        close
    }

    fn trait_item(&mut self, i: usize, end: usize) -> usize {
        let name = self.t.get(i + 1).and_then(Token::ident).map(str::to_owned);
        let mut open = i + 1;
        while open < end && !self.t[open].is_punct('{') && !self.t[open].is_punct(';') {
            open += 1;
        }
        if !self.t.get(open).is_some_and(|t| t.is_punct('{')) {
            return open.saturating_add(1).min(end);
        }
        let close = matching_brace(self.t, open, end);
        self.items(open + 1, close.saturating_sub(1), name.as_deref(), name.as_deref());
        close
    }

    fn mod_item(&mut self, i: usize, end: usize, owner: Option<&str>, tr: Option<&str>) -> usize {
        let mut open = i + 1;
        while open < end && !self.t[open].is_punct('{') && !self.t[open].is_punct(';') {
            open += 1;
        }
        if !self.t.get(open).is_some_and(|t| t.is_punct('{')) {
            return open.saturating_add(1).min(end); // `mod name;`
        }
        let close = matching_brace(self.t, open, end);
        self.items(open + 1, close.saturating_sub(1), owner, tr);
        close
    }

    fn struct_item(&mut self, i: usize, end: usize) -> usize {
        let Some(name) = self.t.get(i + 1).and_then(Token::ident).map(str::to_owned) else {
            return i + 1;
        };
        let mut j = i + 2;
        if self.t.get(j).is_some_and(|t| t.is_punct('<')) {
            j = self.skip_angles(j, end);
        }
        // Tuple struct `struct X(…);` or unit `struct X;`: no named fields.
        while j < end && !self.t[j].is_punct('{') && !self.t[j].is_punct(';') {
            if self.t[j].is_punct('(') {
                j = matching_paren(self.t, j, end);
                continue;
            }
            j += 1;
        }
        if !self.t.get(j).is_some_and(|t| t.is_punct('{')) {
            return j.saturating_add(1).min(end);
        }
        let close = matching_brace(self.t, j, end);
        let mut groups = Vec::new();
        split_top_level_commas(&self.t[j + 1..close.saturating_sub(1)], &mut groups);
        let mut fields = Vec::new();
        for g in groups {
            let p = parse_param(g);
            if let (Some(n), Some(ty)) = (p.name, p.ty) {
                fields.push((n, ty));
            }
        }
        self.out.structs.push(StructItem { name, fields });
        close
    }

    fn skip_attr(&self, i: usize, end: usize) -> usize {
        let mut j = i + 1;
        if self.t.get(j).is_some_and(|t| t.is_punct('!')) {
            j += 1;
        }
        if self.t.get(j).is_some_and(|t| t.is_punct('[')) {
            return matching_bracket(self.t, j, end);
        }
        i + 1
    }

    fn skip_to_semi(&self, i: usize, end: usize) -> usize {
        let mut j = i;
        while j < end {
            if self.t[j].is_punct(';') {
                return j + 1;
            }
            if self.t[j].is_punct('{') {
                j = matching_brace(self.t, j, end);
                continue;
            }
            j += 1;
        }
        end
    }

    fn skip_braced_or_semi(&self, i: usize, end: usize) -> usize {
        let mut j = i;
        while j < end && !self.t[j].is_punct('{') && !self.t[j].is_punct(';') {
            j += 1;
        }
        if self.t.get(j).is_some_and(|t| t.is_punct('{')) {
            matching_brace(self.t, j, end)
        } else {
            j.saturating_add(1).min(end)
        }
    }

    /// Past the `>` closing the `<` at `i`; `>` belonging to `->` is not
    /// counted (function types in bounds).
    fn skip_angles(&self, i: usize, end: usize) -> usize {
        let mut depth = 0i64;
        let mut j = i;
        while j < end {
            if self.t[j].is_punct('<') {
                depth += 1;
            } else if self.t[j].is_punct('>') && !(j > 0 && self.t[j - 1].is_punct('-')) {
                depth -= 1;
                if depth == 0 {
                    return j + 1;
                }
            }
            j += 1;
        }
        end
    }
}

fn matching(t: &[Token], start: usize, end: usize, open: char, close: char) -> usize {
    let mut depth = 0usize;
    let mut i = start;
    while i < end.min(t.len()) {
        if t[i].is_punct(open) {
            depth += 1;
        } else if t[i].is_punct(close) {
            depth = depth.saturating_sub(1);
            if depth == 0 {
                return i + 1;
            }
        }
        i += 1;
    }
    end.min(t.len())
}

/// Past the `)` matching the `(` at `start`.
pub fn matching_paren(t: &[Token], start: usize, end: usize) -> usize {
    matching(t, start, end, '(', ')')
}

/// Past the `}` matching the `{` at `start`.
pub fn matching_brace(t: &[Token], start: usize, end: usize) -> usize {
    matching(t, start, end, '{', '}')
}

/// Past the `]` matching the `[` at `start`.
pub fn matching_bracket(t: &[Token], start: usize, end: usize) -> usize {
    matching(t, start, end, '[', ']')
}

/// Splits `toks` into groups at commas outside any nesting.
pub(crate) fn split_top_level_commas<'a>(toks: &'a [Token], out: &mut Vec<&'a [Token]>) {
    let (mut depth, mut start) = (0i64, 0usize);
    for (i, t) in toks.iter().enumerate() {
        match &t.kind {
            TokenKind::Punct('(') | TokenKind::Punct('[') | TokenKind::Punct('{') => depth += 1,
            TokenKind::Punct(')') | TokenKind::Punct(']') | TokenKind::Punct('}') => depth -= 1,
            TokenKind::Punct('<') => depth += 1,
            TokenKind::Punct('>') if !(i > 0 && toks[i - 1].is_punct('-')) => depth -= 1,
            TokenKind::Punct(',') if depth == 0 => {
                if i > start {
                    out.push(&toks[start..i]);
                }
                start = i + 1;
            }
            _ => {}
        }
    }
    if start < toks.len() {
        out.push(&toks[start..]);
    }
}

/// Parses one `pattern: Type` group (a parameter or a struct field).
fn parse_param(g: &[Token]) -> Param {
    // The first top-level `:` that is not part of `::`.
    let mut depth = 0i64;
    let mut colon = None;
    let mut i = 0usize;
    while i < g.len() {
        match &g[i].kind {
            TokenKind::Punct('(')
            | TokenKind::Punct('[')
            | TokenKind::Punct('{')
            | TokenKind::Punct('<') => depth += 1,
            TokenKind::Punct(')')
            | TokenKind::Punct(']')
            | TokenKind::Punct('}')
            | TokenKind::Punct('>') => depth -= 1,
            TokenKind::Punct(':') if depth == 0 => {
                if g.get(i + 1).is_some_and(|n| n.is_punct(':')) {
                    i += 2;
                    continue;
                }
                colon = Some(i);
                break;
            }
            _ => {}
        }
        i += 1;
    }
    let Some(c) = colon else { return Param { name: None, ty: None } };
    let pat = &g[..c];
    let name = match pat {
        [one] => one.ident().map(str::to_owned),
        [m, one] if m.is_ident("mut") => one.ident().map(str::to_owned),
        _ => None,
    };
    Param { name, ty: first_type_ident(&g[c + 1..], false) }
}

/// First path ident of a type token run, skipping `&`, `mut`, `dyn`,
/// `impl`, lifetimes and (when `skip_wrappers`) `Option`/`Result`.
/// Returns `None` for tuples, slices of primitives, and fn-pointer types.
fn first_type_ident(toks: &[Token], skip_wrappers: bool) -> Option<String> {
    let mut i = 0usize;
    // A leading `->` from a return-type run.
    while i < toks.len() {
        match &toks[i].kind {
            TokenKind::Punct('-')
            | TokenKind::Punct('>')
            | TokenKind::Punct('&')
            | TokenKind::Punct('<')
            | TokenKind::Punct('[') => i += 1,
            TokenKind::Lifetime => i += 1,
            TokenKind::Ident(s) if s == "mut" || s == "dyn" || s == "impl" => i += 1,
            TokenKind::Ident(s) if skip_wrappers && (s == "Option" || s == "Result") => i += 1,
            TokenKind::Ident(s) if s == "fn" => return None,
            TokenKind::Punct('(') => return None,
            TokenKind::Ident(s) => {
                // A path prefix (`shrimp_mem::PhysAddr`): take the last
                // segment before generics.
                if toks.get(i + 1).is_some_and(|n| n.is_punct(':'))
                    && toks.get(i + 2).is_some_and(|n| n.is_punct(':'))
                {
                    i += 3;
                    continue;
                }
                return Some(s.clone());
            }
            _ => return None,
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;
    use crate::rules::test_region_mask;

    fn items(src: &str) -> FileItems {
        let lexed = lex(src);
        let mask = test_region_mask(&lexed.tokens);
        parse_items(&lexed, &mask)
    }

    #[test]
    fn finds_free_and_impl_fns_with_owners() {
        let it = items(
            "fn free(a: u64) -> u64 { a }\n\
             struct Foo { bar: Baz }\n\
             impl Foo {\n    pub fn method(&self, x: &mut Qux) -> Option<Val> { x.go() }\n}\n\
             impl Drop for Foo {\n    fn drop(&mut self) {}\n}\n",
        );
        assert_eq!(it.fns.len(), 3);
        assert_eq!(it.fns[0].name, "free");
        assert!(it.fns[0].owner.is_none() && !it.fns[0].has_receiver);
        assert_eq!(it.fns[1].name, "method");
        assert_eq!(it.fns[1].owner.as_deref(), Some("Foo"));
        assert!(it.fns[1].has_receiver);
        assert_eq!(it.fns[1].params[0].name.as_deref(), Some("x"));
        assert_eq!(it.fns[1].params[0].ty.as_deref(), Some("Qux"));
        assert_eq!(it.fns[1].ret.as_deref(), Some("Val"), "Option wrapper skipped");
        assert_eq!(it.fns[2].owner.as_deref(), Some("Foo"));
        assert_eq!(it.fns[2].trait_name.as_deref(), Some("Drop"));
        assert_eq!(it.structs[0].fields, vec![("bar".to_owned(), "Baz".to_owned())]);
    }

    #[test]
    fn generic_impls_and_paths_resolve_to_the_base_ident() {
        let it = items(
            "impl<D: Device> Machine<D> {\n\
                 fn mem_mut(&mut self) -> &mut shrimp_mem::PhysMemory { &mut self.mem }\n\
             }\n",
        );
        assert_eq!(it.fns[0].owner.as_deref(), Some("Machine"));
        assert_eq!(it.fns[0].ret.as_deref(), Some("PhysMemory"));
    }

    #[test]
    fn bodies_are_token_ranges_and_nested_fns_are_separate_items() {
        let it = items("fn outer() {\n    fn inner() { work(); }\n    inner();\n}\n");
        assert_eq!(it.fns.len(), 1, "nested fns stay inside the outer body range");
        assert!(it.fns[0].body.is_some());
    }

    #[test]
    fn test_fns_are_flagged() {
        let it = items("#[test]\nfn case() { assert!(true); }\nfn real() {}\n");
        assert!(it.fns[0].is_test);
        assert!(!it.fns[1].is_test);
    }

    #[test]
    fn consts_with_brace_initializers_do_not_derail_the_scan() {
        let it = items("const X: u32 = { 4 + 4 };\nstatic S: &str = \"s\";\nfn after() {}\n");
        assert_eq!(it.fns.len(), 1);
        assert_eq!(it.fns[0].name, "after");
    }

    #[test]
    fn marker_binding_skips_attributes_and_doc_comments() {
        let it = items(
            "// lint:hot_path\n#[inline]\n#[allow(dead_code)]\n/// Doc comment.\nfn fast() {}\n",
        );
        let idx = it.fn_at_or_after(1).expect("binds");
        assert_eq!(it.fns[idx].name, "fast");
    }

    #[test]
    fn trait_default_methods_carry_the_trait_as_owner() {
        let it = items("trait Port {\n    fn go(&mut self, n: u64) { self.raw(n) }\n    fn raw(&mut self, n: u64);\n}\n");
        assert_eq!(it.fns.len(), 2);
        assert_eq!(it.fns[0].owner.as_deref(), Some("Port"));
        assert!(it.fns[1].body.is_none());
    }
}
