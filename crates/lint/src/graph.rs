//! Workspace symbol table, heuristic call graph, and reachability.
//!
//! Built from the item layer (`items.rs`), this is what upgrades the
//! linter from body-local to *transitive*: every `fn` in the workspace
//! becomes a node, call sites become edges, and the A1/P1 rules walk the
//! graph from `lint:hot_path` roots instead of stopping at the root's
//! own body.
//!
//! Resolution is deliberately heuristic — no trait solving, no generics.
//! A method call binds only when the receiver's type is *inferable*
//! (receiver chains through typed params, struct fields, and return
//! types; `Type::method` paths; `self`). An unresolvable or ambiguous
//! call produces **no edge**: the graph under-approximates, and the
//! boundary cases (generic `D: Device` receivers, enum-match bindings)
//! are exactly the module boundaries the architecture already treats as
//! ownership transfers. A name-unique fallback fills in the common
//! accessor idiom (`…device_mut().nipt_mut()` — `nipt_mut` names exactly
//! one workspace fn) without risking `push`-style collisions: names on
//! the std-collision blacklist never resolve by uniqueness.

use std::collections::{BTreeMap, BTreeSet, VecDeque};

use crate::config::FileContext;
use crate::diag::{Markers, Rule};
use crate::items::{matching_paren, parse_items, FileItems};
use crate::lexer::{lex, Token};
use crate::rules::test_region_mask;

/// One file fed into the analysis.
pub struct SourceInput {
    /// Repo-relative path used in diagnostics.
    pub path: String,
    /// File contents.
    pub src: String,
    /// Which rules bind.
    pub ctx: FileContext,
}

/// One analyzed file: tokens, markers, test mask, parsed items.
pub struct SourceUnit {
    /// Repo-relative path.
    pub path: String,
    /// Rule applicability.
    pub ctx: FileContext,
    /// The token stream.
    pub tokens: Vec<Token>,
    /// Test-region mask, parallel to `tokens`.
    pub mask: Vec<bool>,
    /// Comment markers.
    pub markers: Markers,
    /// Parsed items.
    pub items: FileItems,
}

/// A function's identity: `(unit index, fn index within the unit)`.
pub type FnId = (usize, usize);

/// One resolved call site inside a function body.
#[derive(Clone, Debug)]
pub struct CallSite {
    /// Line of the callee name token.
    pub line: u32,
    /// Callee name as written.
    pub name: String,
    /// Resolved targets (empty when unresolved — no edge).
    pub targets: Vec<FnId>,
}

/// Method names too common to resolve by workspace-wide name uniqueness:
/// they collide with `std` collection methods, so a bare `.push(…)` on a
/// `Vec` must not bind to some workspace type's `push`.
const NAME_FALLBACK_BLACKLIST: &[&str] = &[
    "push",
    "pop",
    "insert",
    "remove",
    "get",
    "get_mut",
    "set",
    "clear",
    "len",
    "is_empty",
    "iter",
    "iter_mut",
    "into_iter",
    "next",
    "extend",
    "drain",
    "contains",
    "new",
    "from",
    "default",
    "clone",
    "fmt",
    "drop",
    "eq",
    "cmp",
    "hash",
    "write",
    "read",
    "as_ref",
    "as_mut",
    "take",
    "map",
    "and_then",
    "unwrap_or",
    "min",
    "max",
    "count",
    "record",
];

/// Keywords that can precede `(` without being a call.
const NOT_A_CALL: &[&str] =
    &["if", "while", "match", "for", "loop", "return", "in", "as", "move", "fn", "let", "else"];

/// The whole-workspace analysis state: units plus the symbol tables the
/// resolver and the taint pass share.
pub struct Workspace {
    /// The analyzed files.
    pub units: Vec<SourceUnit>,
    /// `(owner type, fn name)` → candidates (inherent and trait impls).
    methods: BTreeMap<(String, String), Vec<FnId>>,
    /// `(trait name, fn name)` → implementing methods (for `dyn Trait`).
    trait_methods: BTreeMap<(String, String), Vec<FnId>>,
    /// Free functions by name.
    free_fns: BTreeMap<String, Vec<FnId>>,
    /// Every fn by name (the uniqueness fallback).
    by_name: BTreeMap<String, Vec<FnId>>,
    /// `(struct, field)` → first type ident.
    fields: BTreeMap<(String, String), String>,
    /// Functions annotated `// lint:checks(F1)`.
    sanitizer_fns: BTreeSet<FnId>,
    /// Their names (plus structural sanitizers), for call-site matching.
    sanitizer_names: BTreeSet<String>,
    /// `lint:hot_path` roots, bound through the item parser.
    hot_roots: Vec<FnId>,
    /// Per-fn environment (binding name → type ident) and call sites.
    facts: BTreeMap<FnId, FnFacts>,
}

/// Per-function derived facts.
#[derive(Default)]
struct FnFacts {
    env: BTreeMap<String, String>,
    calls: Vec<CallSite>,
}

impl Workspace {
    /// Lexes, parses and indexes every input file, then extracts and
    /// resolves all call sites.
    pub fn build(inputs: Vec<SourceInput>) -> Workspace {
        let mut units = Vec::with_capacity(inputs.len());
        for input in inputs {
            let lexed = lex(&input.src);
            let mask = test_region_mask(&lexed.tokens);
            let markers = Markers::scan(&lexed);
            let items = parse_items(&lexed, &mask);
            units.push(SourceUnit {
                path: input.path,
                ctx: input.ctx,
                tokens: lexed.tokens,
                mask,
                markers,
                items,
            });
        }

        let mut ws = Workspace {
            units,
            methods: BTreeMap::new(),
            trait_methods: BTreeMap::new(),
            free_fns: BTreeMap::new(),
            by_name: BTreeMap::new(),
            fields: BTreeMap::new(),
            sanitizer_fns: BTreeSet::new(),
            sanitizer_names: BTreeSet::new(),
            hot_roots: Vec::new(),
            facts: BTreeMap::new(),
        };

        // Symbol tables.
        for (u, unit) in ws.units.iter().enumerate() {
            for s in &unit.items.structs {
                for (f, ty) in &s.fields {
                    ws.fields.insert((s.name.clone(), f.clone()), ty.clone());
                }
            }
            for (i, f) in unit.items.fns.iter().enumerate() {
                if f.is_test {
                    continue;
                }
                let id: FnId = (u, i);
                ws.by_name.entry(f.name.clone()).or_default().push(id);
                match &f.owner {
                    Some(owner) => {
                        ws.methods.entry((owner.clone(), f.name.clone())).or_default().push(id);
                        if let Some(tr) = &f.trait_name {
                            if tr != owner {
                                ws.trait_methods
                                    .entry((tr.clone(), f.name.clone()))
                                    .or_default()
                                    .push(id);
                            }
                        }
                    }
                    None => ws.free_fns.entry(f.name.clone()).or_default().push(id),
                }
            }
        }

        // Marker binding: hot-path roots and fn-level sanitizers. A
        // `lint:checks(F1)` whose line falls *inside* a body is a
        // statement-level cleanse (handled by the taint pass), not a
        // sanitizer fn.
        for (u, unit) in ws.units.iter().enumerate() {
            for &line in &unit.markers.hot_paths {
                if let Some(i) = unit.items.fn_at_or_after(line) {
                    let id = (u, i);
                    if !unit.items.fns[i].is_test && !ws.hot_roots.contains(&id) {
                        ws.hot_roots.push(id);
                    }
                }
            }
            for &line in &unit.markers.checks {
                if ws.body_enclosing_line(u, line).is_some() {
                    continue; // statement-level
                }
                if let Some(i) = unit.items.fn_at_or_after(line) {
                    ws.sanitizer_fns.insert((u, i));
                    ws.sanitizer_names.insert(unit.items.fns[i].name.clone());
                }
            }
        }
        // Structural sanitizers: checked collection access is a bounds
        // check by construction.
        ws.sanitizer_names.insert("get".to_owned());
        ws.sanitizer_names.insert("get_mut".to_owned());

        // Per-fn facts (env + resolved call sites).
        let mut facts = BTreeMap::new();
        for u in 0..ws.units.len() {
            for i in 0..ws.units[u].items.fns.len() {
                if ws.units[u].items.fns[i].is_test {
                    continue;
                }
                facts.insert((u, i), ws.fn_facts((u, i)));
            }
        }
        ws.facts = facts;
        ws
    }

    /// The `lint:hot_path` roots in workspace order.
    pub fn hot_roots(&self) -> &[FnId] {
        &self.hot_roots
    }

    /// Whether `id` is an annotated `lint:checks(F1)` sanitizer.
    pub fn is_sanitizer(&self, id: FnId) -> bool {
        self.sanitizer_fns.contains(&id)
    }

    /// Names that cleanse a value when called on it (annotated sanitizer
    /// fns plus structural `get`/`get_mut`).
    pub fn sanitizer_names(&self) -> &BTreeSet<String> {
        &self.sanitizer_names
    }

    /// The resolved call sites of `id`.
    pub fn calls_of(&self, id: FnId) -> &[CallSite] {
        self.facts.get(&id).map_or(&[], |f| &f.calls)
    }

    /// The binding-name → type environment inferred for `id`.
    pub fn env_of(&self, id: FnId) -> Option<&BTreeMap<String, String>> {
        self.facts.get(&id).map(|f| &f.env)
    }

    /// `Owner::name` (or bare `name`) for diagnostics and the dump.
    pub fn label(&self, id: FnId) -> String {
        let f = &self.units[id.0].items.fns[id.1];
        match &f.owner {
            Some(o) => format!("{o}::{}", f.name),
            None => f.name.clone(),
        }
    }

    /// The fn (if any) whose body spans `line` in unit `u`.
    pub fn body_enclosing_line(&self, u: usize, line: u32) -> Option<usize> {
        let unit = &self.units[u];
        unit.items.fns.iter().position(|f| {
            f.body.is_some_and(|(b0, b1)| {
                let first = unit.tokens.get(b0).map_or(u32::MAX, |t| t.line);
                let last = unit.tokens.get(b1.saturating_sub(1)).map_or(0, |t| t.line);
                first <= line && line <= last
            })
        })
    }

    // -- resolution ----------------------------------------------------

    /// Return type of a `(receiver type, method)` pair; falls back to
    /// trait-keyed candidates for `dyn Trait` receivers.
    fn ret_of_method(&self, ty: &str, name: &str) -> Option<String> {
        self.method_candidates(ty, name)
            .first()
            .and_then(|&id| self.units[id.0].items.fns[id.1].ret.clone())
    }

    fn method_candidates(&self, ty: &str, name: &str) -> Vec<FnId> {
        // Union of inherent/decl candidates and trait-impl candidates:
        // when `ty` is a trait (`dyn Trait` receivers), the declaration
        // is bodiless and the impls carry the behaviour to traverse.
        let key = (ty.to_owned(), name.to_owned());
        let mut v = self.methods.get(&key).cloned().unwrap_or_default();
        for &id in self.trait_methods.get(&key).into_iter().flatten() {
            if !v.contains(&id) {
                v.push(id);
            }
        }
        v
    }

    /// The single workspace fn named `name`, when the name is unique and
    /// not on the std-collision blacklist.
    fn unique_by_name(&self, name: &str) -> Option<FnId> {
        if NAME_FALLBACK_BLACKLIST.contains(&name) {
            return None;
        }
        match self.by_name.get(name).map(Vec::as_slice) {
            Some([one]) => Some(*one),
            _ => None,
        }
    }

    /// Type of the expression *ending* at token `j` (inclusive), walking
    /// receiver chains backward. `owner` is the enclosing impl type (for
    /// `self`); `env` maps local bindings and typed params.
    pub fn expr_type(
        &self,
        toks: &[Token],
        j: usize,
        env: &BTreeMap<String, String>,
        owner: Option<&str>,
    ) -> Option<String> {
        if j >= toks.len() {
            return None;
        }
        let t = &toks[j];
        if t.is_punct('?') {
            return if j > 0 { self.expr_type(toks, j - 1, env, owner) } else { None };
        }
        if let Some(name) = t.ident() {
            if name == "self" {
                return owner.map(str::to_owned);
            }
            // Field access `…prefix.name`.
            if j >= 2 && toks[j - 1].is_punct('.') {
                let base = self.expr_type(toks, j - 2, env, owner)?;
                return self.fields.get(&(base, name.to_owned())).cloned();
            }
            // Path tail `X::NAME` (associated const): unknown.
            if j >= 2 && toks[j - 1].is_punct(':') && toks[j - 2].is_punct(':') {
                return None;
            }
            return env.get(name).cloned();
        }
        if t.is_punct(')') {
            let open = backward_matching_paren(toks, j)?;
            if open == 0 {
                return None;
            }
            let k = open - 1;
            let name = toks[k].ident()?;
            // Method call `recv.name(…)`.
            if k >= 1 && toks[k - 1].is_punct('.') {
                if let Some(recv) =
                    (k >= 2).then(|| self.expr_type(toks, k - 2, env, owner)).flatten()
                {
                    if let Some(ret) = self.ret_of_method(&recv, name) {
                        return Some(ret);
                    }
                }
                // Accessor fallback: a workspace-unique method name types
                // the chain even when the receiver is generic.
                return self
                    .unique_by_name(name)
                    .and_then(|id| self.units[id.0].items.fns[id.1].ret.clone());
            }
            // Qualified call `X::name(…)` / `Self::name(…)`.
            if k >= 2 && toks[k - 1].is_punct(':') && toks[k - 2].is_punct(':') {
                let q = if k >= 3 { toks[k - 3].ident() } else { None }?;
                let q = if q == "Self" { owner? } else { q };
                return self.ret_of_method(q, name);
            }
            // Free call.
            return self
                .free_fns
                .get(name)
                .and_then(|v| v.first())
                .and_then(|&id| self.units[id.0].items.fns[id.1].ret.clone());
        }
        None
    }

    /// Builds the env and extracts + resolves every call site of one fn.
    fn fn_facts(&self, id: FnId) -> FnFacts {
        let unit = &self.units[id.0];
        let f = &unit.items.fns[id.1];
        let mut env: BTreeMap<String, String> = BTreeMap::new();
        for p in &f.params {
            if let (Some(n), Some(ty)) = (&p.name, &p.ty) {
                env.insert(n.clone(), ty.clone());
            }
        }
        let mut calls = Vec::new();
        let Some((b0, b1)) = f.body else {
            return FnFacts { env, calls };
        };
        let toks = &unit.tokens[..b1.min(unit.tokens.len())];
        let owner = f.owner.as_deref();

        let mut i = b0;
        while i < toks.len() {
            let t = &toks[i];
            // `let` bindings extend the env when the rhs type resolves.
            if t.is_ident("let") {
                if let Some((names, _, rhs_end)) = let_binding(toks, i) {
                    if let Some(ty) = self.expr_type(toks, rhs_end, &env, owner) {
                        for n in names {
                            env.insert(n, ty.clone());
                        }
                    }
                }
                i += 1;
                continue;
            }
            // A call: ident directly followed by `(`.
            let is_call = t.ident().is_some_and(|n| !NOT_A_CALL.contains(&n))
                && toks.get(i + 1).is_some_and(|n| n.is_punct('('));
            if !is_call {
                i += 1;
                continue;
            }
            let name = t.ident().unwrap_or_default().to_owned();
            let targets = if i >= 1 && toks[i - 1].is_punct('.') {
                // Method call: resolve the receiver, else uniqueness.
                let recv = (i >= 2).then(|| self.expr_type(toks, i - 2, &env, owner)).flatten();
                match recv {
                    Some(ty) => self.method_candidates(&ty, &name),
                    None => self
                        .unique_by_name(&name)
                        .filter(|&fid| self.units[fid.0].items.fns[fid.1].has_receiver)
                        .into_iter()
                        .collect(),
                }
            } else if i >= 2 && toks[i - 1].is_punct(':') && toks[i - 2].is_punct(':') {
                match if i >= 3 { toks[i - 3].ident() } else { None } {
                    Some(q) => {
                        let q = if q == "Self" { owner.unwrap_or(q) } else { q };
                        self.method_candidates(q, &name)
                    }
                    None => Vec::new(),
                }
            } else {
                // Free call: prefer same-unit definitions.
                let all = self.free_fns.get(&name).cloned().unwrap_or_default();
                let local: Vec<FnId> = all.iter().copied().filter(|t| t.0 == id.0).collect();
                if local.is_empty() {
                    all
                } else {
                    local
                }
            };
            calls.push(CallSite { line: t.line, name, targets });
            i += 1;
        }
        FnFacts { env, calls }
    }

    // -- reachability --------------------------------------------------

    /// BFS over resolved edges from `roots`, returning every reached fn
    /// with its (first-found, shortest) call chain `root → … → fn`.
    /// `prune(caller, line)` skips an edge — used to honor
    /// `lint:allow(…)` at the call site. Test fns are never entered.
    pub fn reachable(
        &self,
        roots: &[FnId],
        prune: &dyn Fn(FnId, u32) -> bool,
    ) -> Vec<(FnId, Vec<FnId>)> {
        let mut parent: BTreeMap<FnId, FnId> = BTreeMap::new();
        let mut seen: BTreeSet<FnId> = BTreeSet::new();
        let mut queue: VecDeque<FnId> = VecDeque::new();
        let mut order: Vec<FnId> = Vec::new();
        for &r in roots {
            if seen.insert(r) {
                queue.push_back(r);
            }
        }
        while let Some(id) = queue.pop_front() {
            order.push(id);
            for call in self.calls_of(id) {
                if prune(id, call.line) {
                    continue;
                }
                for &tgt in &call.targets {
                    if self.units[tgt.0].items.fns[tgt.1].is_test {
                        continue;
                    }
                    if seen.insert(tgt) {
                        parent.insert(tgt, id);
                        queue.push_back(tgt);
                    }
                }
            }
        }
        order
            .into_iter()
            .map(|id| {
                let mut chain = vec![id];
                let mut cur = id;
                while let Some(&p) = parent.get(&cur) {
                    chain.push(p);
                    cur = p;
                }
                chain.reverse();
                (id, chain)
            })
            .collect()
    }

    /// Renders `labels.join(" → ")` for a chain.
    pub fn chain_text(&self, chain: &[FnId]) -> String {
        chain.iter().map(|&id| self.label(id)).collect::<Vec<_>>().join(" → ")
    }

    /// The deterministic `--callgraph` dump: each `lint:hot_path` root
    /// with its full (unpruned) reachable call set, sorted. Callee line
    /// numbers are deliberately omitted so unrelated edits don't churn
    /// the committed copy.
    pub fn render_callgraph(&self) -> String {
        let mut out = String::from(
            "# shrimp-lint --callgraph: reachable call set of every lint:hot_path root.\n\
             # Regenerate: cargo run -p shrimp-lint -- --callgraph > crates/lint/callgraph.txt\n",
        );
        let mut roots: Vec<FnId> = self.hot_roots.to_vec();
        roots.sort_by_key(|&id| (self.units[id.0].path.clone(), self.label(id)));
        for &root in &roots {
            out.push('\n');
            out.push_str(&format!("root {} [{}]\n", self.label(root), self.units[root.0].path));
            let reached = self.reachable(&[root], &|_, _| false);
            let mut lines: Vec<String> = reached
                .iter()
                .filter(|(id, _)| *id != root)
                .map(|(id, _)| format!("  {} [{}]", self.label(*id), self.units[id.0].path))
                .collect();
            lines.sort();
            lines.dedup();
            for l in &lines {
                out.push_str(l);
                out.push('\n');
            }
        }
        out
    }

    /// Whether `rule` is waived at `unit`/`line` (allow-escape window).
    pub fn allowed(&self, unit: usize, rule: Rule, line: u32) -> bool {
        self.units[unit].markers.allowed(rule, line)
    }
}

/// Index of the `(` matching the `)` at `j`, scanning backward.
fn backward_matching_paren(toks: &[Token], j: usize) -> Option<usize> {
    let mut depth = 0i64;
    let mut i = j;
    loop {
        if toks[i].is_punct(')') {
            depth += 1;
        } else if toks[i].is_punct('(') {
            depth -= 1;
            if depth == 0 {
                return Some(i);
            }
        }
        if i == 0 {
            return None;
        }
        i -= 1;
    }
}

/// Parses the `let` statement starting at `i` (the `let` token):
/// returns the bound names and the rhs token span `(first, last)`
/// (inclusive, before the terminating `;` or `else`). `None` for
/// bindings with no `=`.
pub fn let_binding(toks: &[Token], i: usize) -> Option<(Vec<String>, usize, usize)> {
    // Find the top-level `=` (not `==`, `<=`, `>=`, `!=`, `+=`, …).
    let mut depth = 0i64;
    let mut j = i + 1;
    let mut eq = None;
    while j < toks.len() {
        let t = &toks[j];
        match () {
            _ if t.is_punct('(') || t.is_punct('[') || t.is_punct('{') => depth += 1,
            _ if t.is_punct(')') || t.is_punct(']') || t.is_punct('}') => {
                depth -= 1;
                if depth < 0 {
                    return None;
                }
            }
            _ if t.is_punct(';') && depth == 0 => return None,
            _ if t.is_punct('=') && depth == 0 => {
                let prev_op = j >= 1
                    && ['=', '!', '<', '>', '+', '-', '*', '/', '&', '|', '^', '%']
                        .iter()
                        .any(|&c| toks[j - 1].is_punct(c));
                let next_eq = toks.get(j + 1).is_some_and(|n| n.is_punct('='));
                if !prev_op && !next_eq {
                    eq = Some(j);
                    break;
                }
            }
            _ => {}
        }
        j += 1;
    }
    let eq = eq?;
    // Bound names: lowercase/underscore idents in the pattern span,
    // excluding `mut`/`ref` (types and variant constructors start
    // uppercase and are skipped).
    let mut names = Vec::new();
    for t in &toks[i + 1..eq] {
        if let Some(n) = t.ident() {
            if n != "mut"
                && n != "ref"
                && n.chars().next().is_some_and(|c| c.is_lowercase() || c == '_')
            {
                names.push(n.to_owned());
            }
        }
    }
    // End of rhs: terminating `;` or `else` at depth 0.
    let mut depth = 0i64;
    let mut k = eq + 1;
    while k < toks.len() {
        let t = &toks[k];
        if t.is_punct('(') || t.is_punct('[') || t.is_punct('{') {
            depth += 1;
        } else if t.is_punct(')') || t.is_punct(']') || t.is_punct('}') {
            depth -= 1;
            if depth < 0 {
                break;
            }
        } else if depth == 0 && (t.is_punct(';') || t.is_ident("else")) {
            break;
        }
        k += 1;
    }
    if k == eq + 1 {
        return None;
    }
    Some((names, eq + 1, k - 1))
}

/// End of the argument region of the call whose name token is at `i`
/// (`toks[i + 1]` must be `(`): index just past the matching `)`.
pub fn call_args_end(toks: &[Token], i: usize) -> usize {
    matching_paren(toks, i + 1, toks.len())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ws(files: &[(&str, &str)]) -> Workspace {
        Workspace::build(
            files
                .iter()
                .map(|(p, s)| SourceInput {
                    path: (*p).to_owned(),
                    src: (*s).to_owned(),
                    ctx: FileContext::default(),
                })
                .collect(),
        )
    }

    fn find(ws: &Workspace, label: &str) -> FnId {
        for (u, unit) in ws.units.iter().enumerate() {
            for i in 0..unit.items.fns.len() {
                if ws.label((u, i)) == label {
                    return (u, i);
                }
            }
        }
        panic!("no fn labelled {label}");
    }

    #[test]
    fn self_methods_and_typed_receivers_resolve() {
        let w = ws(&[(
            "a.rs",
            "struct Core { q: Queue }\n\
             struct Queue;\n\
             impl Queue { fn drain_one(&mut self) {} }\n\
             impl Core {\n\
                 fn tick(&mut self) { self.helper(); self.q.drain_one(); }\n\
                 fn helper(&mut self) {}\n\
             }\n",
        )]);
        let tick = find(&w, "Core::tick");
        let names: Vec<_> = w
            .calls_of(tick)
            .iter()
            .filter(|c| !c.targets.is_empty())
            .map(|c| c.name.clone())
            .collect();
        assert_eq!(names, vec!["helper", "drain_one"]);
    }

    #[test]
    fn return_type_chains_and_unique_name_fallback_resolve() {
        let w = ws(&[
            (
                "a.rs",
                "struct Node;\nstruct Machine;\nstruct Store;\n\
                 impl Node { fn machine_mut(&mut self) -> &mut Machine { todo!() } }\n\
                 impl Machine { fn store_mut(&mut self) -> &mut Store { todo!() } }\n\
                 impl Store { fn poke_slot(&mut self, i: u64) {} }\n",
            ),
            ("b.rs", "fn drive(n: &mut Node) { n.machine_mut().store_mut().poke_slot(3); }\n"),
        ]);
        let drive = find(&w, "drive");
        let poke = find(&w, "Store::poke_slot");
        let call = w.calls_of(drive).iter().find(|c| c.name == "poke_slot").unwrap();
        assert_eq!(call.targets, vec![poke]);
    }

    #[test]
    fn blacklisted_names_never_bind_by_uniqueness() {
        let w = ws(&[(
            "a.rs",
            "struct MergeQueue;\nimpl MergeQueue { fn push(&mut self, x: u64) {} }\n\
             fn other(v: &mut Vec<u64>) { v.push(1); }\n",
        )]);
        let other = find(&w, "other");
        let call = w.calls_of(other).iter().find(|c| c.name == "push").unwrap();
        assert!(call.targets.is_empty(), "`.push` on an untyped receiver must not bind");
    }

    #[test]
    fn reachability_follows_chains_and_allow_prunes_edges() {
        let src = "\
// lint:hot_path
fn root() { mid(); }
fn mid() {
    leaf();
    do_more();
    finish();
    tidy();
    // lint:allow(A1) -- cold slow path, measured off the wire
    cold();
}
fn cold() {}
fn leaf() {}
fn do_more() {}
fn finish() {}
fn tidy() {}
";
        let w = ws(&[("a.rs", src)]);
        let root = find(&w, "root");
        let reached = w.reachable(&[root], &|caller, line| w.allowed(caller.0, Rule::A1, line));
        let labels: Vec<_> = reached.iter().map(|(id, _)| w.label(*id)).collect();
        assert!(labels.contains(&"leaf".to_owned()));
        assert!(!labels.contains(&"cold".to_owned()), "allow(A1) prunes the edge");
        let (_, chain) = reached.iter().find(|(id, _)| w.label(*id) == "leaf").unwrap();
        assert_eq!(w.chain_text(chain), "root → mid → leaf");
    }

    #[test]
    fn dyn_trait_receivers_resolve_through_impls() {
        let w = ws(&[(
            "a.rs",
            "trait Port { fn send(&mut self, n: u64); }\n\
             struct Wire;\n\
             impl Port for Wire { fn send(&mut self, n: u64) {} }\n\
             fn go(p: &mut dyn Port) { p.send(1); }\n",
        )]);
        let go = find(&w, "go");
        let send = find(&w, "Wire::send");
        let call = w.calls_of(go).iter().find(|c| c.name == "send").unwrap();
        assert!(call.targets.contains(&send), "dyn receiver reaches the impl");
    }

    #[test]
    fn callgraph_dump_is_deterministic_and_sorted() {
        let src = "// lint:hot_path\nfn r() { a(); b(); }\nfn a() { b(); }\nfn b() {}\n";
        let w = ws(&[("z.rs", src)]);
        let dump = w.render_callgraph();
        assert!(dump.contains("root r [z.rs]"));
        let a_pos = dump.find("  a [z.rs]").unwrap();
        let b_pos = dump.find("  b [z.rs]").unwrap();
        assert!(a_pos < b_pos);
        assert_eq!(dump, w.render_callgraph());
    }
}
