//! F1 — protection flow: user/packet-controlled values must pass a
//! sanitizer before they index protected state.
//!
//! The paper's protection argument (invariants I1–I4) is that every
//! proxy-derived address or offset is *checked and translated* — by the
//! NIPT lookup, the MMU, or an explicit interval check — before it can
//! select physical memory, a frame, or a NIPT slot. This pass makes that
//! discipline structural:
//!
//! - **Sources.** Parameters named in [`F1_SOURCE_PARAMS`] (proxy
//!   store/load offsets and values, MMIO register writes, NI device
//!   addresses, recycled NIPT slot indices) start *tainted*, as does any
//!   read of a field in [`F1_TAINTED_FIELDS`] (packet destination
//!   addresses, tenant `dev_page` views, run strides/counts). Taint is
//!   re-seeded at every function boundary, so the intra-procedural walk
//!   still gates each layer of a cross-crate flow.
//! - **Propagation.** A `let` whose rhs mentions a tainted value taints
//!   its bindings; rebinding from a clean rhs clears them.
//! - **Sanitizers.** A call to a function annotated `// lint:checks(F1)`
//!   (NIPT lookup, MMU translate, `PhysMemory::check`, `frame_in_use`)
//!   cleanses: its result is clean and its arguments are exempt inside
//!   the call. `get`/`get_mut` are structural sanitizers (checked access
//!   by construction). A `// lint:checks(F1)` comment *inside* a body
//!   marks a hand-written bounds check: values the covered statement
//!   mentions are clean from there on.
//! - **Sinks.** Passing a tainted value in an index-like argument of a
//!   [`F1_SINKS`] method (`PhysMemory` accessors, `Nipt::set`/`clear`,
//!   `FrameAllocator::free`), or using one as a raw slice index, is an
//!   error unless waived with `lint:allow(F1) -- <why>`. Sink methods
//!   called from inside the sink type's own impl are exempt — internal
//!   delegation lands on the type's own annotated check.

use std::collections::BTreeSet;

use crate::config::{F1_SINKS, F1_SOURCE_PARAMS, F1_TAINTED_FIELDS};
use crate::diag::{Diagnostic, Rule, JUSTIFY_WINDOW};
use crate::graph::{call_args_end, let_binding, FnId, Workspace};
use crate::items::{matching_bracket, split_top_level_commas};
use crate::lexer::Token;

/// Runs the F1 pass over every function of every `ctx.f1` unit,
/// appending (already allow-filtered) diagnostics.
pub fn f1_taint(ws: &Workspace, out: &mut Vec<Diagnostic>) {
    for u in 0..ws.units.len() {
        if !ws.units[u].ctx.f1 {
            continue;
        }
        for i in 0..ws.units[u].items.fns.len() {
            let f = &ws.units[u].items.fns[i];
            if f.is_test || ws.is_sanitizer((u, i)) {
                continue;
            }
            scan_fn(ws, (u, i), out);
        }
    }
}

fn scan_fn(ws: &Workspace, id: FnId, out: &mut Vec<Diagnostic>) {
    let unit = &ws.units[id.0];
    let f = &unit.items.fns[id.1];
    let Some((b0, b1)) = f.body else { return };
    let toks = &unit.tokens[..b1.min(unit.tokens.len())];
    let owner = f.owner.as_deref();
    let empty = std::collections::BTreeMap::new();
    let env = ws.env_of(id).unwrap_or(&empty);

    let mut tainted: BTreeSet<String> = f
        .params
        .iter()
        .filter_map(|p| p.name.clone())
        .filter(|n| F1_SOURCE_PARAMS.iter().any(|&(fname, pname)| fname == f.name && pname == n))
        .collect();

    // Lines covered by a statement-level `lint:checks(F1)` marker.
    let covered =
        |line: u32| unit.markers.checks.iter().any(|&m| m <= line && line - m <= JUSTIFY_WINDOW);

    let mut i = b0;
    while i < toks.len() {
        let t = &toks[i];
        // A covered statement is a hand-written check: the values it
        // mentions are validated from here on.
        if covered(t.line) {
            if let Some(n) = t.ident() {
                tainted.remove(n);
            }
            i += 1;
            continue;
        }
        // `let` bindings: taint or cleanse the bound names.
        if t.is_ident("let") {
            if let Some((names, r0, r1)) = let_binding(toks, i) {
                let sanitized = has_sanitizer_call(ws, &toks[r0..=r1]);
                let dirty = !sanitized && taint_in(ws, toks, r0, r1 + 1, &tainted).is_some();
                for n in names {
                    if dirty {
                        tainted.insert(n);
                    } else {
                        tainted.remove(&n);
                    }
                }
            }
            i += 1;
            continue;
        }
        // Plain reassignment `name = rhs;`.
        if let Some(name) = t.ident() {
            let stmt_start = i == b0 + 1
                || toks.get(i - 1).is_some_and(|p| ";{}".chars().any(|c| p.is_punct(c)));
            let plain_eq = toks.get(i + 1).is_some_and(|n| n.is_punct('='))
                && !toks.get(i + 2).is_some_and(|n| n.is_punct('='));
            if stmt_start && plain_eq {
                let end = stmt_end(toks, i + 2);
                let sanitized = has_sanitizer_call(ws, &toks[i + 2..end]);
                let dirty = !sanitized && taint_in(ws, toks, i + 2, end, &tainted).is_some();
                if dirty {
                    tainted.insert(name.to_owned());
                } else {
                    tainted.remove(name);
                }
            }
        }
        // Sink method call `recv.m(args…)`.
        if let Some(m) = t.ident() {
            if toks.get(i + 1).is_some_and(|n| n.is_punct('('))
                && i >= 1
                && toks[i - 1].is_punct('.')
            {
                if let Some((sink_ty, checked_args)) = sink_entry(m) {
                    let recv = if i >= 2 { ws.expr_type(toks, i - 2, env, owner) } else { None };
                    if recv.as_deref() == Some(sink_ty) && owner != Some(sink_ty) {
                        let end = call_args_end(toks, i);
                        let mut groups = Vec::new();
                        split_top_level_commas(&toks[i + 2..end.saturating_sub(1)], &mut groups);
                        for g in groups.iter().take(checked_args) {
                            if let Some(what) = taint_in_slice(ws, g, &tainted) {
                                push_diag(ws, id, t.line, &what, &format!("{sink_ty}::{m}"), out);
                                break;
                            }
                        }
                    }
                }
            }
        }
        // Raw slice/array indexing `expr[…]` with a tainted index.
        if t.is_punct('[')
            && i >= 1
            && (toks[i - 1].ident().is_some_and(|n| n != "mut")
                || toks[i - 1].is_punct(')')
                || toks[i - 1].is_punct(']'))
        {
            let end = matching_bracket(toks, i, toks.len());
            if let Some(what) = taint_in(ws, toks, i + 1, end.saturating_sub(1), &tainted) {
                push_diag(ws, id, t.line, &what, "a raw index expression", out);
            }
            i = end;
            continue;
        }
        i += 1;
    }
}

/// The sink table entry for method name `m`: `(receiver type, how many
/// leading arguments are index-like and must be clean)`.
fn sink_entry(m: &str) -> Option<(&'static str, usize)> {
    for &(ty, methods) in F1_SINKS {
        if let Some(&(_, n)) = methods.iter().find(|&&(name, _)| name == m) {
            return Some((ty, n));
        }
    }
    None
}

/// Whether the token run contains a call to a sanitizer (annotated
/// `lint:checks(F1)` fn or structural `get`/`get_mut`).
fn has_sanitizer_call(ws: &Workspace, toks: &[Token]) -> bool {
    toks.iter().enumerate().any(|(j, t)| {
        t.ident().is_some_and(|n| ws.sanitizer_names().contains(n))
            && toks.get(j + 1).is_some_and(|n| n.is_punct('('))
    })
}

/// First tainted value in `toks[start..end)`: an ident in `tainted` or a
/// read of a field in [`F1_TAINTED_FIELDS`]. Argument spans of sanitizer
/// calls are skipped — a value inside `nipt.lookup(index)` is being
/// checked, not leaked.
fn taint_in(
    ws: &Workspace,
    toks: &[Token],
    start: usize,
    end: usize,
    tainted: &BTreeSet<String>,
) -> Option<String> {
    let end = end.min(toks.len());
    let mut j = start;
    while j < end {
        let t = &toks[j];
        if let Some(n) = t.ident() {
            if ws.sanitizer_names().contains(n) && toks.get(j + 1).is_some_and(|x| x.is_punct('('))
            {
                j = call_args_end(toks, j);
                continue;
            }
            if tainted.contains(n) {
                return Some(n.to_owned());
            }
        }
        if t.is_punct('.') {
            if let Some(fld) = toks.get(j + 1).and_then(Token::ident) {
                if F1_TAINTED_FIELDS.contains(&fld)
                    && !toks.get(j + 2).is_some_and(|x| x.is_punct('('))
                {
                    return Some(format!(".{fld}"));
                }
            }
        }
        j += 1;
    }
    None
}

fn taint_in_slice(ws: &Workspace, toks: &[Token], tainted: &BTreeSet<String>) -> Option<String> {
    taint_in(ws, toks, 0, toks.len(), tainted)
}

/// End (exclusive) of the statement starting at `start`: the top-level `;`.
fn stmt_end(toks: &[Token], start: usize) -> usize {
    let mut depth = 0i64;
    let mut j = start;
    while j < toks.len() {
        let t = &toks[j];
        if t.is_punct('(') || t.is_punct('[') || t.is_punct('{') {
            depth += 1;
        } else if t.is_punct(')') || t.is_punct(']') || t.is_punct('}') {
            depth -= 1;
            if depth < 0 {
                return j;
            }
        } else if depth == 0 && t.is_punct(';') {
            return j;
        }
        j += 1;
    }
    toks.len()
}

fn push_diag(
    ws: &Workspace,
    id: FnId,
    line: u32,
    what: &str,
    sink: &str,
    out: &mut Vec<Diagnostic>,
) {
    let unit = &ws.units[id.0];
    if unit.markers.allowed(Rule::F1, line) {
        return;
    }
    out.push(Diagnostic {
        rule: Rule::F1,
        file: unit.path.clone(),
        line,
        message: format!(
            "tainted value `{what}` (user/packet-controlled) reaches {sink} in `{}` without a \
             sanitizer on the path; route it through a `// lint:checks(F1)` helper (NIPT lookup, \
             MMU translate, interval check) or waive with `lint:allow(F1) -- <why safe>`",
            ws.label(id)
        ),
    });
}
