//! `shrimp-lint` CLI: lints the workspace, prints `file:line: [RULE]`
//! diagnostics, exits 1 if any fire.

use std::path::PathBuf;
use std::process::ExitCode;

use shrimp_lint::{find_workspace_root, lint_workspace};

const USAGE: &str = "usage: shrimp-lint [--workspace] [--root <dir>]\n\
                     \n\
                     Checks the repo's structural invariants:\n\
                     \x20 D1 determinism   A1 zero-alloc hot paths\n\
                     \x20 U1 unsafe audit  P1 panic discipline\n\
                     \n\
                     Escape hatch: // lint:allow(<rule>) -- <reason>";

fn main() -> ExitCode {
    let mut root: Option<PathBuf> = None;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--workspace" => {} // the default (and only) scope
            "--root" => match args.next() {
                Some(dir) => root = Some(PathBuf::from(dir)),
                None => {
                    eprintln!("--root needs a directory\n{USAGE}");
                    return ExitCode::FAILURE;
                }
            },
            "--help" | "-h" => {
                println!("{USAGE}");
                return ExitCode::SUCCESS;
            }
            other => {
                eprintln!("unknown argument `{other}`\n{USAGE}");
                return ExitCode::FAILURE;
            }
        }
    }

    let root = root.or_else(|| {
        let cwd = std::env::current_dir().ok()?;
        find_workspace_root(&cwd)
    });
    let Some(root) = root else {
        eprintln!("shrimp-lint: no workspace root found (run inside the repo or pass --root)");
        return ExitCode::FAILURE;
    };

    match lint_workspace(&root) {
        Ok(diags) if diags.is_empty() => {
            println!("shrimp-lint: workspace clean (D1 A1 U1 P1)");
            ExitCode::SUCCESS
        }
        Ok(diags) => {
            for d in &diags {
                println!("{d}");
            }
            println!("shrimp-lint: {} diagnostic(s)", diags.len());
            ExitCode::FAILURE
        }
        Err(e) => {
            eprintln!("shrimp-lint: I/O error: {e}");
            ExitCode::FAILURE
        }
    }
}
