//! `shrimp-lint` CLI: lints the workspace, prints `file:line: [RULE]`
//! diagnostics, exits 1 if any fire. `--callgraph` dumps the hot-path
//! call graph instead; `--format json` emits machine-readable output.

use std::path::PathBuf;
use std::process::ExitCode;

use shrimp_lint::{diag, find_workspace_root, lint_workspace, render_workspace_callgraph};

const USAGE: &str = "usage: shrimp-lint [--workspace] [--root <dir>] [--callgraph] \
                     [--format text|json]\n\
                     \n\
                     Checks the repo's structural invariants:\n\
                     \x20 D1 determinism   A1 zero-alloc hot paths (transitive)\n\
                     \x20 U1 unsafe audit  P1 panic discipline (transitive)\n\
                     \x20 F1 protection flow (tainted index needs a sanitizer)\n\
                     \n\
                     --callgraph  dump every lint:hot_path root's reachable call set\n\
                     --format     text (default) or json\n\
                     \n\
                     Escape hatch: // lint:allow(<rule>) -- <reason>\n\
                     Sanitizer:    // lint:checks(F1) on a bounds/translation helper";

fn main() -> ExitCode {
    let mut root: Option<PathBuf> = None;
    let mut callgraph = false;
    let mut json = false;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--workspace" => {} // the default (and only) scope
            "--callgraph" => callgraph = true,
            "--format" => match args.next().as_deref() {
                Some("json") => json = true,
                Some("text") => json = false,
                _ => {
                    eprintln!("--format needs `text` or `json`\n{USAGE}");
                    return ExitCode::FAILURE;
                }
            },
            "--root" => match args.next() {
                Some(dir) => root = Some(PathBuf::from(dir)),
                None => {
                    eprintln!("--root needs a directory\n{USAGE}");
                    return ExitCode::FAILURE;
                }
            },
            "--help" | "-h" => {
                println!("{USAGE}");
                return ExitCode::SUCCESS;
            }
            other => {
                eprintln!("unknown argument `{other}`\n{USAGE}");
                return ExitCode::FAILURE;
            }
        }
    }

    let root = root.or_else(|| {
        let cwd = std::env::current_dir().ok()?;
        find_workspace_root(&cwd)
    });
    let Some(root) = root else {
        eprintln!("shrimp-lint: no workspace root found (run inside the repo or pass --root)");
        return ExitCode::FAILURE;
    };

    if callgraph {
        return match render_workspace_callgraph(&root) {
            Ok(dump) => {
                print!("{dump}");
                ExitCode::SUCCESS
            }
            Err(e) => {
                eprintln!("shrimp-lint: I/O error: {e}");
                ExitCode::FAILURE
            }
        };
    }

    match lint_workspace(&root) {
        Ok(diags) if diags.is_empty() => {
            if json {
                print!("{}", diag::to_json(&diags));
            } else {
                println!("shrimp-lint: workspace clean (D1 A1 U1 P1 F1)");
            }
            ExitCode::SUCCESS
        }
        Ok(diags) => {
            if json {
                print!("{}", diag::to_json(&diags));
            } else {
                for d in &diags {
                    println!("{d}");
                }
                println!("shrimp-lint: {} diagnostic(s)", diags.len());
            }
            ExitCode::FAILURE
        }
        Err(e) => {
            eprintln!("shrimp-lint: I/O error: {e}");
            ExitCode::FAILURE
        }
    }
}
