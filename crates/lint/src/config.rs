//! Per-crate rule applicability: which invariants bind where.
//!
//! The tables mirror the repo's architecture documents (DESIGN.md §8):
//! determinism binds every crate whose code runs *inside* the simulated
//! timeline; panic discipline binds the files on the per-message
//! delivery path; the unsafe audit and hot-path rules bind everywhere
//! (hot paths are opt-in via `// lint:hot_path`).

/// Crates (directory names under `crates/`) whose simulated behaviour
/// must be bit-identical run to run — no iteration-order, wall-clock,
/// RNG or pointer-value leaks. `bench` is deliberately absent: it
/// measures host wall-clock. `proptest` and `lint` run outside the
/// simulated timeline.
pub const D1_CRATES: &[&str] =
    &["sim", "net", "shrimp", "core", "machine", "dma", "mmu", "mem", "os"];

/// Repo-relative files on the per-message delivery path, where a panic
/// would take down a whole multi-node run: every `unwrap`/`expect`/
/// `panic!` must carry an `// INVARIANT:` justification.
pub const P1_FILES: &[&str] = &[
    "crates/shrimp/src/engine.rs",
    "crates/shrimp/src/nic.rs",
    "crates/net/src/fabric.rs",
    "crates/sim/src/buf.rs",
    "crates/sim/src/parallel.rs",
    "crates/sim/src/span.rs",
];

/// How the rules apply to one file.
#[derive(Clone, Copy, Debug, Default)]
pub struct FileContext {
    /// D1 applies (the file belongs to a determinism-critical crate).
    pub determinism: bool,
    /// P1 applies (the file is on the delivery path).
    pub delivery_path: bool,
    /// U1's crate-root attribute check applies (the file is a `lib.rs`).
    pub crate_root: bool,
}

impl FileContext {
    /// The context for a repo-relative path like
    /// `crates/net/src/fabric.rs`.
    pub fn for_path(rel_path: &str) -> FileContext {
        let norm = rel_path.replace('\\', "/");
        let crate_name = norm
            .strip_prefix("crates/")
            .and_then(|rest| rest.split('/').next())
            .unwrap_or_default();
        FileContext {
            determinism: D1_CRATES.contains(&crate_name),
            delivery_path: P1_FILES.contains(&norm.as_str()),
            crate_root: norm.ends_with("/src/lib.rs"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn contexts_follow_the_tables() {
        let fabric = FileContext::for_path("crates/net/src/fabric.rs");
        assert!(fabric.determinism && fabric.delivery_path && !fabric.crate_root);
        let bench = FileContext::for_path("crates/bench/src/host_perf.rs");
        assert!(!bench.determinism && !bench.delivery_path);
        let root = FileContext::for_path("crates/mem/src/lib.rs");
        assert!(root.crate_root && root.determinism);
    }
}
