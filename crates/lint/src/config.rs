//! Per-crate rule applicability: which invariants bind where.
//!
//! The tables mirror the repo's architecture documents (DESIGN.md §8):
//! determinism binds every crate whose code runs *inside* the simulated
//! timeline; panic discipline binds the files on the per-message
//! delivery path; the unsafe audit and hot-path rules bind everywhere
//! (hot paths are opt-in via `// lint:hot_path`).

/// Crates (directory names under `crates/`) whose simulated behaviour
/// must be bit-identical run to run — no iteration-order, wall-clock,
/// RNG or pointer-value leaks. `bench` is deliberately absent: it
/// measures host wall-clock. `proptest` and `lint` run outside the
/// simulated timeline.
pub const D1_CRATES: &[&str] =
    &["sim", "net", "shrimp", "core", "machine", "dma", "mmu", "mem", "os"];

/// Repo-relative files on the per-message delivery path, where a panic
/// would take down a whole multi-node run: every `unwrap`/`expect`/
/// `panic!` must carry an `// INVARIANT:` justification.
pub const P1_FILES: &[&str] = &[
    "crates/shrimp/src/engine.rs",
    "crates/shrimp/src/nic.rs",
    "crates/net/src/fabric.rs",
    "crates/sim/src/buf.rs",
    "crates/sim/src/parallel.rs",
    "crates/sim/src/span.rs",
];

/// Crates on the protection path, where rule F1 binds: every value
/// derived from a user/packet-controlled source must pass a sanitizer
/// before indexing `PhysMemory`, frame tables, or NIPT slots (the
/// paper's I1–I4 check-and-translate discipline).
pub const F1_CRATES: &[&str] = &["machine", "shrimp", "mem", "os"];

/// `(function name, parameter name)` pairs whose values arrive straight
/// from user or packet control — the F1 taint sources. Taint is seeded
/// per function, so each layer of a cross-crate flow re-checks its own
/// boundary.
pub const F1_SOURCE_PARAMS: &[(&str, &str)] = &[
    // CPU-side proxy access: the user picks the virtual address (proxy
    // page + offset) and the stored word (§4.2 deliberate update).
    ("store", "va"),
    ("store", "value"),
    ("load", "va"),
    // NI MMIO window: user-programmed PIO registers.
    ("mmio_store", "offset"),
    ("mmio_store", "value"),
    ("mmio_load", "offset"),
    // Device-side proxy decode.
    ("handle_store", "proxy"),
    ("handle_store", "value"),
    ("handle_load", "proxy"),
    ("handle_load_system", "proxy"),
    // NI send path: destination device addresses arrive from user stores.
    ("packetize", "dev_addr"),
    ("packetize_burst", "dev_addr"),
    ("validate", "dev_addr"),
    ("validate", "nbytes"),
    ("dma_write", "dev_addr"),
    ("dma_write_traced", "dev_addr"),
    ("dma_write_run", "dev_addr"),
    // NIPT recycling: a victim's stale slot index is tenant-controlled.
    ("import_mapping_over", "start"),
];

/// Struct fields whose reads are tainted wherever they appear: packet
/// destination addresses, tenant NIPT views, run strides/counts, and the
/// NI's user-writable PIO registers.
pub const F1_TAINTED_FIELDS: &[&str] =
    &["dst_paddr", "dev_page", "stride_ns", "count", "pio_dest_page", "pio_dest_offset", "meta"];

/// F1 sinks: `(receiver type, [(method, index-like leading args)])`.
/// Only the leading index-like arguments must be clean — data operands
/// (the value stored by `write_u64`, the payload slice of `write`) may
/// carry user bytes; it is the *where*, not the *what*, that protection
/// gates.
pub const F1_SINKS: &[(&str, &[(&str, usize)])] = &[
    (
        "PhysMemory",
        &[
            ("read", 2),
            ("read_vec", 2),
            ("slice_mut", 2),
            ("write", 1),
            ("copy_from_mem", 3),
            ("copy_within", 3),
            ("fill", 2),
            ("read_u64", 1),
            ("write_u64", 1),
            ("frame", 1),
            ("write_frame", 1),
        ],
    ),
    ("Nipt", &[("set", 1), ("clear", 1)]),
    ("FrameAllocator", &[("free", 1)]),
];

/// How the rules apply to one file.
#[derive(Clone, Copy, Debug, Default)]
pub struct FileContext {
    /// D1 applies (the file belongs to a determinism-critical crate).
    pub determinism: bool,
    /// P1 applies (the file is on the delivery path).
    pub delivery_path: bool,
    /// U1's crate-root attribute check applies (the file is a `lib.rs`).
    pub crate_root: bool,
    /// F1 applies (the file belongs to a protection-path crate).
    pub f1: bool,
}

impl FileContext {
    /// The context for a repo-relative path like
    /// `crates/net/src/fabric.rs`.
    pub fn for_path(rel_path: &str) -> FileContext {
        let norm = rel_path.replace('\\', "/");
        let crate_name = norm
            .strip_prefix("crates/")
            .and_then(|rest| rest.split('/').next())
            .unwrap_or_default();
        FileContext {
            determinism: D1_CRATES.contains(&crate_name),
            delivery_path: P1_FILES.contains(&norm.as_str()),
            crate_root: norm.ends_with("/src/lib.rs"),
            f1: F1_CRATES.contains(&crate_name),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn contexts_follow_the_tables() {
        let fabric = FileContext::for_path("crates/net/src/fabric.rs");
        assert!(fabric.determinism && fabric.delivery_path && !fabric.crate_root);
        assert!(!fabric.f1, "net is below the protection boundary");
        let bench = FileContext::for_path("crates/bench/src/host_perf.rs");
        assert!(!bench.determinism && !bench.delivery_path && !bench.f1);
        let root = FileContext::for_path("crates/mem/src/lib.rs");
        assert!(root.crate_root && root.determinism && root.f1);
        assert!(FileContext::for_path("crates/shrimp/src/nic.rs").f1);
    }
}
