//! **shrimp-lint** — the in-tree static invariant checker.
//!
//! The repo's engine invariants — bit-identical timelines at any thread
//! count, zero heap allocations per message on the data plane, a single
//! audited `unsafe` impl, no unjustified panics on the delivery path,
//! and the paper's check-before-index protection discipline — are
//! *sampled* by `tests/determinism.rs` and
//! `crates/bench/tests/zero_alloc.rs`, but a test only sees the
//! workloads it runs. This linter enforces the same properties
//! **structurally**: source that could violate them is rejected before
//! it ever executes, the way the paper turns runtime protection checks
//! into mapping invariants.
//!
//! v2 is workspace-level and call-graph-aware: an item parser
//! (`items.rs`) lifts every `fn` into a symbol table, a heuristic
//! resolver (`graph.rs`) builds the intra-workspace call graph, and the
//! allocation/panic rules walk it from every `// lint:hot_path` root.
//!
//! Rules (each with a machine-readable id and `file:line` diagnostics):
//!
//! - **D1 determinism** — in simulation crates, no `HashMap`/`HashSet`,
//!   `Instant`/`SystemTime`, `thread_rng`, or pointer-value-to-integer
//!   casts,
//! - **A1 zero-alloc (transitive)** — functions marked
//!   `// lint:hot_path` and everything they reach contain no allocating
//!   calls; callee diagnostics carry the root→site call chain,
//! - **U1 unsafe audit** — crate roots carry
//!   `#![forbid(unsafe_code)]`/`#![deny(unsafe_code)]` (the latter with a
//!   justification) and every `unsafe` carries `// SAFETY:`,
//! - **P1 panic discipline (transitive)** — no `unwrap`/`expect`/
//!   `panic!` on the delivery path — or reachable from its hot roots —
//!   without `// INVARIANT:`,
//! - **F1 protection flow** — user/packet-controlled values (proxy
//!   offsets, packet destination addresses, NIPT probe indices) must
//!   pass a `// lint:checks(F1)` sanitizer before indexing
//!   `PhysMemory`, frame tables, or NIPT slots.
//!
//! Escape hatch: `// lint:allow(<rule>) -- <reason>` on (or just above)
//! the offending line; at a *call site* it also prunes the transitive
//! walk past that edge. The reason is mandatory; a reasonless allow is
//! itself a diagnostic (L0).
//!
//! Run it as a binary (`cargo run -p shrimp-lint -- --workspace`), dump
//! the hot-path call graph (`-- --callgraph`), or let `cargo test` run
//! the bundled workspace-is-clean test.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod config;
pub mod diag;
pub mod graph;
pub mod items;
pub mod lexer;
pub mod rules;
pub mod taint;
pub mod workspace;

pub use config::FileContext;
pub use diag::{Diagnostic, Rule};
pub use graph::{SourceInput, Workspace};
pub use rules::{analyze, lint_source};
pub use workspace::{
    collect_workspace, find_workspace_root, lint_workspace, render_workspace_callgraph,
};
