//! **shrimp-lint** — the in-tree static invariant checker.
//!
//! The repo's engine invariants — bit-identical timelines at any thread
//! count, zero heap allocations per message on the data plane, a single
//! audited `unsafe` impl, no unjustified panics on the delivery path —
//! are *sampled* by `tests/determinism.rs` and
//! `crates/bench/tests/zero_alloc.rs`, but a test only sees the
//! workloads it runs. This linter enforces the same properties
//! **structurally**: source that could violate them is rejected before
//! it ever executes, the way the paper turns runtime protection checks
//! into mapping invariants.
//!
//! Rules (each with a machine-readable id and `file:line` diagnostics):
//!
//! - **D1 determinism** — in simulation crates, no `HashMap`/`HashSet`,
//!   `Instant`/`SystemTime`, `thread_rng`, or pointer-value-to-integer
//!   casts,
//! - **A1 zero-alloc** — functions marked `// lint:hot_path` contain no
//!   allocating calls,
//! - **U1 unsafe audit** — crate roots carry
//!   `#![forbid(unsafe_code)]`/`#![deny(unsafe_code)]` (the latter with a
//!   justification) and every `unsafe` carries `// SAFETY:`,
//! - **P1 panic discipline** — no `unwrap`/`expect`/`panic!` on the
//!   delivery path without `// INVARIANT:`.
//!
//! Escape hatch: `// lint:allow(<rule>) -- <reason>` on (or just above)
//! the offending line. The reason is mandatory; a reasonless allow is
//! itself a diagnostic (L0).
//!
//! Run it as a binary (`cargo run -p shrimp-lint -- --workspace`) or let
//! `cargo test` run the bundled workspace-is-clean test.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod config;
pub mod diag;
pub mod lexer;
pub mod rules;
pub mod workspace;

pub use config::FileContext;
pub use diag::{Diagnostic, Rule};
pub use rules::lint_source;
pub use workspace::{find_workspace_root, lint_workspace};
