//! A minimal hand-rolled Rust lexer: just enough structure for the rule
//! engine, with zero dependencies.
//!
//! The lexer splits a source file into
//!
//! - a flat token stream ([`Token`]) of identifiers/keywords, literals
//!   and single punctuation characters, each tagged with its 1-based
//!   line, and
//! - the file's comments ([`Comment`]), which is where this linter's
//!   markers live (`lint:allow`, `lint:hot_path`, `SAFETY:`,
//!   `INVARIANT:`).
//!
//! Everything inside string/char literals and comments is removed from
//! the token stream, so a rule matching the identifier `HashMap` can
//! never fire on prose or on a diagnostic message. Raw strings
//! (`r#"…"#`), byte strings, nested block comments, char literals and
//! lifetimes (`'a` vs `'a'`) are handled; full numeric-literal grammar
//! is not needed — digits and their suffixes collapse into one
//! [`TokenKind::Literal`].

/// What a token is; rules mostly match on identifiers.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum TokenKind {
    /// An identifier or keyword (`HashMap`, `unsafe`, `as`, …).
    Ident(String),
    /// One punctuation character (`.`, `!`, `[`, `*`, …).
    Punct(char),
    /// A literal (string, char, number) — contents deliberately dropped.
    Literal,
    /// A lifetime (`'a`, `'static`).
    Lifetime,
}

/// One lexed token with its 1-based source line.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Token {
    /// Token kind (and identifier text, when an identifier).
    pub kind: TokenKind,
    /// 1-based line number.
    pub line: u32,
}

impl Token {
    /// The identifier text, if this token is an identifier.
    pub fn ident(&self) -> Option<&str> {
        match &self.kind {
            TokenKind::Ident(s) => Some(s),
            _ => None,
        }
    }

    /// True if this token is the identifier `name`.
    pub fn is_ident(&self, name: &str) -> bool {
        self.ident() == Some(name)
    }

    /// True if this token is the punctuation character `c`.
    pub fn is_punct(&self, c: char) -> bool {
        self.kind == TokenKind::Punct(c)
    }
}

/// One comment (line or block), 1-based line of its first character.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Comment {
    /// Comment text without the `//` / `/*` framing.
    pub text: String,
    /// 1-based line the comment starts on.
    pub line: u32,
}

/// A lexed source file.
#[derive(Clone, Debug, Default)]
pub struct Lexed {
    /// The token stream (comments/literals stripped).
    pub tokens: Vec<Token>,
    /// All comments, in source order.
    pub comments: Vec<Comment>,
}

/// Lexes `src` into tokens and comments. Never fails: unterminated
/// constructs consume to end-of-file (the compiler, not the linter, owns
/// syntax errors).
pub fn lex(src: &str) -> Lexed {
    Lexer { src: src.as_bytes(), pos: 0, line: 1, out: Lexed::default() }.run()
}

struct Lexer<'a> {
    src: &'a [u8],
    pos: usize,
    line: u32,
    out: Lexed,
}

impl Lexer<'_> {
    fn run(mut self) -> Lexed {
        while let Some(c) = self.peek() {
            match c {
                b'\n' => {
                    self.line += 1;
                    self.pos += 1;
                }
                c if c.is_ascii_whitespace() => self.pos += 1,
                b'/' if self.peek_at(1) == Some(b'/') => self.line_comment(),
                b'/' if self.peek_at(1) == Some(b'*') => self.block_comment(),
                b'"' => self.string_literal(),
                b'r' | b'b' if self.raw_or_byte_string() => {}
                b'\'' => self.char_or_lifetime(),
                c if c.is_ascii_digit() => self.number(),
                c if c == b'_' || c.is_ascii_alphabetic() => self.ident(),
                c => {
                    self.out
                        .tokens
                        .push(Token { kind: TokenKind::Punct(c as char), line: self.line });
                    self.pos += 1;
                }
            }
        }
        self.out
    }

    fn peek(&self) -> Option<u8> {
        self.src.get(self.pos).copied()
    }

    fn peek_at(&self, off: usize) -> Option<u8> {
        self.src.get(self.pos + off).copied()
    }

    fn bump_counting_newlines(&mut self, n: usize) {
        for _ in 0..n {
            if self.peek() == Some(b'\n') {
                self.line += 1;
            }
            self.pos += 1;
        }
    }

    fn line_comment(&mut self) {
        let start_line = self.line;
        self.pos += 2;
        let begin = self.pos;
        while let Some(c) = self.peek() {
            if c == b'\n' {
                break;
            }
            self.pos += 1;
        }
        let text = String::from_utf8_lossy(&self.src[begin..self.pos]).into_owned();
        self.out.comments.push(Comment { text, line: start_line });
    }

    fn block_comment(&mut self) {
        let start_line = self.line;
        self.pos += 2;
        let begin = self.pos;
        let mut depth = 1usize;
        while depth > 0 && self.pos < self.src.len() {
            if self.peek() == Some(b'/') && self.peek_at(1) == Some(b'*') {
                depth += 1;
                self.pos += 2;
            } else if self.peek() == Some(b'*') && self.peek_at(1) == Some(b'/') {
                depth -= 1;
                self.pos += 2;
            } else {
                self.bump_counting_newlines(1);
            }
        }
        let end = self.pos.saturating_sub(2).max(begin);
        let text = String::from_utf8_lossy(&self.src[begin..end]).into_owned();
        self.out.comments.push(Comment { text, line: start_line });
    }

    /// Consumes a `"…"` literal (handles `\"` escapes, counts newlines).
    fn string_literal(&mut self) {
        let line = self.line;
        self.pos += 1;
        while let Some(c) = self.peek() {
            match c {
                b'\\' => self.bump_counting_newlines(2),
                b'"' => {
                    self.pos += 1;
                    break;
                }
                _ => self.bump_counting_newlines(1),
            }
        }
        self.out.tokens.push(Token { kind: TokenKind::Literal, line });
    }

    /// If positioned at a raw/byte string (`r"…"`, `r#"…"#`, `b"…"`,
    /// `br#"…"#`), consumes it and returns true.
    fn raw_or_byte_string(&mut self) -> bool {
        let line = self.line;
        let mut off = 0usize;
        if self.peek_at(off) == Some(b'b') {
            off += 1;
        }
        let raw = self.peek_at(off) == Some(b'r');
        if raw {
            off += 1;
        }
        let mut hashes = 0usize;
        while raw && self.peek_at(off + hashes) == Some(b'#') {
            hashes += 1;
        }
        if self.peek_at(off + hashes) != Some(b'"') {
            return false; // plain identifier starting with r/b
        }
        if !raw && hashes == 0 && off == 0 {
            return false; // bare '"' is handled by string_literal
        }
        self.bump_counting_newlines(off + hashes + 1);
        if raw {
            // Scan for `"` followed by `hashes` hash marks.
            'outer: while self.pos < self.src.len() {
                if self.peek() == Some(b'"') {
                    for h in 0..hashes {
                        if self.peek_at(1 + h) != Some(b'#') {
                            self.bump_counting_newlines(1);
                            continue 'outer;
                        }
                    }
                    self.bump_counting_newlines(1 + hashes);
                    break;
                }
                self.bump_counting_newlines(1);
            }
        } else {
            while let Some(c) = self.peek() {
                match c {
                    b'\\' => self.bump_counting_newlines(2),
                    b'"' => {
                        self.pos += 1;
                        break;
                    }
                    _ => self.bump_counting_newlines(1),
                }
            }
        }
        self.out.tokens.push(Token { kind: TokenKind::Literal, line });
        true
    }

    /// `'a` (lifetime) vs `'x'` / `'\n'` (char literal).
    fn char_or_lifetime(&mut self) {
        let line = self.line;
        // Escape sequence: definitely a char literal.
        if self.peek_at(1) == Some(b'\\') {
            self.pos += 2; // consume `'\`
            self.bump_counting_newlines(1); // the escaped char
            if self.peek() == Some(b'\'') {
                self.pos += 1;
            }
            self.out.tokens.push(Token { kind: TokenKind::Literal, line });
            return;
        }
        let is_ident_start =
            |c: u8| c == b'_' || c.is_ascii_alphabetic() || !c.is_ascii() /* unicode */;
        match (self.peek_at(1), self.peek_at(2)) {
            // `'x'`: one char then a closing quote.
            (Some(_), Some(b'\'')) => {
                self.pos += 3;
                self.out.tokens.push(Token { kind: TokenKind::Literal, line });
            }
            // `'ident` with no closing quote: a lifetime.
            (Some(c), _) if is_ident_start(c) => {
                self.pos += 2;
                while let Some(c) = self.peek() {
                    if c == b'_' || c.is_ascii_alphanumeric() {
                        self.pos += 1;
                    } else {
                        break;
                    }
                }
                self.out.tokens.push(Token { kind: TokenKind::Lifetime, line });
            }
            _ => {
                // Stray quote; emit as punctuation and move on.
                self.out.tokens.push(Token { kind: TokenKind::Punct('\''), line });
                self.pos += 1;
            }
        }
    }

    fn number(&mut self) {
        let line = self.line;
        // Digits, `_` separators, type suffixes, hex letters; a `.` is
        // consumed only when followed by a digit (so `0..5` stays a
        // range and `1.0` stays one literal).
        while let Some(c) = self.peek() {
            let in_literal = c == b'_'
                || c.is_ascii_alphanumeric()
                || (c == b'.' && self.peek_at(1).is_some_and(|d| d.is_ascii_digit()));
            if !in_literal {
                break;
            }
            self.pos += 1;
        }
        self.out.tokens.push(Token { kind: TokenKind::Literal, line });
    }

    fn ident(&mut self) {
        let line = self.line;
        let begin = self.pos;
        while let Some(c) = self.peek() {
            if c == b'_' || c.is_ascii_alphanumeric() {
                self.pos += 1;
            } else {
                break;
            }
        }
        let text = String::from_utf8_lossy(&self.src[begin..self.pos]).into_owned();
        self.out.tokens.push(Token { kind: TokenKind::Ident(text), line });
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn idents(src: &str) -> Vec<String> {
        lex(src).tokens.iter().filter_map(|t| t.ident().map(str::to_owned)).collect()
    }

    #[test]
    fn strings_and_comments_never_produce_idents() {
        let src = r##"
            // HashMap in a comment
            /* HashMap in a block /* nested */ comment */
            let s = "HashMap in a string";
            let r = r#"HashMap raw "quoted" string"#;
            let b = b"HashMap bytes";
            let actual = Vec::new();
        "##;
        let ids = idents(src);
        assert!(!ids.contains(&"HashMap".to_string()), "{ids:?}");
        assert!(ids.contains(&"Vec".to_string()));
    }

    #[test]
    fn comments_are_captured_with_lines() {
        let lexed = lex("let a = 1;\n// lint:allow(D1) -- reason\nlet b = 2;\n");
        assert_eq!(lexed.comments.len(), 1);
        assert_eq!(lexed.comments[0].line, 2);
        assert!(lexed.comments[0].text.contains("lint:allow(D1)"));
    }

    #[test]
    fn lifetimes_are_not_char_literals() {
        let lexed = lex("fn f<'a>(x: &'a str) -> char { 'x' }");
        let lifetimes = lexed.tokens.iter().filter(|t| t.kind == TokenKind::Lifetime).count();
        assert_eq!(lifetimes, 2);
        let literals = lexed.tokens.iter().filter(|t| t.kind == TokenKind::Literal).count();
        assert_eq!(literals, 1, "'x' is a char literal");
    }

    #[test]
    fn escaped_char_literals_lex() {
        let lexed = lex(r"let c = '\n'; let q = '\''; let id = x;");
        assert!(lexed.tokens.iter().any(|t| t.is_ident("id")));
    }

    #[test]
    fn line_numbers_track_multiline_constructs() {
        let src = "let a = \"two\nlines\";\nlet b = 1;\n/* block\ncomment */\nlet c = 2;\n";
        let lexed = lex(src);
        let b = lexed.tokens.iter().find(|t| t.is_ident("b")).unwrap();
        assert_eq!(b.line, 3);
        let c = lexed.tokens.iter().find(|t| t.is_ident("c")).unwrap();
        assert_eq!(c.line, 6);
    }

    #[test]
    fn numbers_do_not_swallow_ranges() {
        let lexed = lex("for i in 0..50u64 { let f = 1.5; }");
        let dots = lexed.tokens.iter().filter(|t| t.is_punct('.')).count();
        assert_eq!(dots, 2, "the `..` of the range survives");
    }
}
