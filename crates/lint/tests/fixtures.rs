//! Proves each rule fires exactly where the known-bad fixtures say it
//! should — no more, no less. Every fixture under `fixtures/` encodes
//! its expected diagnostics in `// line N: fires` comments; this test is
//! the executable form of those comments.

use shrimp_lint::config::FileContext;
use shrimp_lint::diag::Rule;
use shrimp_lint::rules::lint_source;

/// Lints a fixture file and returns the `(rule, line)` set.
fn fire(name: &str, ctx: FileContext) -> Vec<(Rule, u32)> {
    let path = format!("{}/fixtures/{name}", env!("CARGO_MANIFEST_DIR"));
    let src =
        std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("reading fixture {path}: {e}"));
    lint_source(name, &src, &ctx).iter().map(|d| (d.rule, d.line)).collect()
}

fn det() -> FileContext {
    FileContext { determinism: true, ..FileContext::default() }
}

#[test]
fn d1_flags_hash_containers_outside_test_code() {
    assert_eq!(
        fire("d1_hashmap.rs", det()),
        vec![(Rule::D1, 2), (Rule::D1, 6), (Rule::D1, 11)],
        "import, field and HashSet::new fire; BTreeMap, strings, comments \
         and the #[cfg(test)] module do not"
    );
}

#[test]
fn d1_flags_wall_clock_and_os_randomness() {
    assert_eq!(
        fire("d1_wallclock.rs", det()),
        vec![(Rule::D1, 2), (Rule::D1, 5), (Rule::D1, 10), (Rule::D1, 14)],
    );
}

#[test]
fn d1_flags_pointer_value_casts_but_not_plain_integer_casts() {
    assert_eq!(fire("d1_ptr_order.rs", det()), vec![(Rule::D1, 5), (Rule::D1, 9)]);
}

#[test]
fn d1_is_inert_outside_determinism_crates() {
    assert_eq!(
        fire("d1_hashmap.rs", FileContext::default()),
        vec![],
        "the same source is clean when the crate is not determinism-critical"
    );
}

#[test]
fn a1_flags_every_allocating_form_only_inside_hot_paths() {
    assert_eq!(
        fire("a1_hot_path.rs", FileContext::default()),
        (5u32..=12).map(|l| (Rule::A1, l)).collect::<Vec<_>>(),
        "push/to_vec/Box::new/format!/String::from/collect/vec!/Vec::new \
         fire in the marked fn; the unmarked fn and the reasoned \
         lint:allow(A1) escape do not"
    );
}

#[test]
fn u1_flags_unsafe_without_safety_comment() {
    assert_eq!(
        fire("u1_unsafe.rs", FileContext::default()),
        vec![(Rule::U1, 4), (Rule::U1, 12)],
        "a SAFETY: comment within the window covers its unsafe block"
    );
}

#[test]
fn u1_flags_crate_root_missing_unsafe_code_attr() {
    let root = FileContext { crate_root: true, ..FileContext::default() };
    assert_eq!(fire("u1_no_forbid.rs", root), vec![(Rule::U1, 1)]);
}

#[test]
fn u1_accepts_deny_with_justifying_comment() {
    let root = FileContext { crate_root: true, ..FileContext::default() };
    assert_eq!(fire("u1_deny_ok.rs", root), vec![]);
}

#[test]
fn p1_flags_unjustified_panics_on_the_delivery_path() {
    let delivery = FileContext { delivery_path: true, ..FileContext::default() };
    assert_eq!(
        fire("p1_unwrap.rs", delivery),
        vec![(Rule::P1, 4), (Rule::P1, 8), (Rule::P1, 14)],
        "unwrap/expect/panic! fire; the INVARIANT-justified unwrap and the \
         #[cfg(test)] module do not"
    );
}

#[test]
fn p1_is_inert_off_the_delivery_path() {
    assert_eq!(fire("p1_unwrap.rs", FileContext::default()), vec![]);
}

#[test]
fn allow_escape_suppresses_with_reason_and_is_flagged_without() {
    assert_eq!(
        fire("allow_escape.rs", det()),
        vec![(Rule::L0, 8), (Rule::D1, 9)],
        "a reasoned allow waives its rule; a reasonless allow is an L0 \
         diagnostic and waives nothing"
    );
}
