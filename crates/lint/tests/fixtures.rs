//! Proves each rule fires exactly where the known-bad fixtures say it
//! should — no more, no less. Every fixture under `fixtures/` encodes
//! its expected diagnostics in `// line N: fires` comments; this test is
//! the executable form of those comments.

use shrimp_lint::config::FileContext;
use shrimp_lint::diag::{Diagnostic, Rule};
use shrimp_lint::rules::lint_source;

/// Lints a fixture file and returns the full diagnostics.
fn fire_diags(name: &str, ctx: FileContext) -> Vec<Diagnostic> {
    let path = format!("{}/fixtures/{name}", env!("CARGO_MANIFEST_DIR"));
    let src =
        std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("reading fixture {path}: {e}"));
    lint_source(name, &src, &ctx)
}

/// Lints a fixture file and returns the `(rule, line)` set.
fn fire(name: &str, ctx: FileContext) -> Vec<(Rule, u32)> {
    fire_diags(name, ctx).iter().map(|d| (d.rule, d.line)).collect()
}

fn det() -> FileContext {
    FileContext { determinism: true, ..FileContext::default() }
}

#[test]
fn d1_flags_hash_containers_outside_test_code() {
    assert_eq!(
        fire("d1_hashmap.rs", det()),
        vec![(Rule::D1, 2), (Rule::D1, 6), (Rule::D1, 11)],
        "import, field and HashSet::new fire; BTreeMap, strings, comments \
         and the #[cfg(test)] module do not"
    );
}

#[test]
fn d1_flags_wall_clock_and_os_randomness() {
    assert_eq!(
        fire("d1_wallclock.rs", det()),
        vec![(Rule::D1, 2), (Rule::D1, 5), (Rule::D1, 10), (Rule::D1, 14)],
    );
}

#[test]
fn d1_flags_pointer_value_casts_but_not_plain_integer_casts() {
    assert_eq!(fire("d1_ptr_order.rs", det()), vec![(Rule::D1, 5), (Rule::D1, 9)]);
}

#[test]
fn d1_is_inert_outside_determinism_crates() {
    assert_eq!(
        fire("d1_hashmap.rs", FileContext::default()),
        vec![],
        "the same source is clean when the crate is not determinism-critical"
    );
}

#[test]
fn a1_flags_every_allocating_form_only_inside_hot_paths() {
    assert_eq!(
        fire("a1_hot_path.rs", FileContext::default()),
        (5u32..=12).map(|l| (Rule::A1, l)).collect::<Vec<_>>(),
        "push/to_vec/Box::new/format!/String::from/collect/vec!/Vec::new \
         fire in the marked fn; the unmarked fn and the reasoned \
         lint:allow(A1) escape do not"
    );
}

#[test]
fn u1_flags_unsafe_without_safety_comment() {
    assert_eq!(
        fire("u1_unsafe.rs", FileContext::default()),
        vec![(Rule::U1, 4), (Rule::U1, 12)],
        "a SAFETY: comment within the window covers its unsafe block"
    );
}

#[test]
fn u1_flags_crate_root_missing_unsafe_code_attr() {
    let root = FileContext { crate_root: true, ..FileContext::default() };
    assert_eq!(fire("u1_no_forbid.rs", root), vec![(Rule::U1, 1)]);
}

#[test]
fn u1_accepts_deny_with_justifying_comment() {
    let root = FileContext { crate_root: true, ..FileContext::default() };
    assert_eq!(fire("u1_deny_ok.rs", root), vec![]);
}

#[test]
fn p1_flags_unjustified_panics_on_the_delivery_path() {
    let delivery = FileContext { delivery_path: true, ..FileContext::default() };
    assert_eq!(
        fire("p1_unwrap.rs", delivery),
        vec![(Rule::P1, 4), (Rule::P1, 8), (Rule::P1, 14)],
        "unwrap/expect/panic! fire; the INVARIANT-justified unwrap and the \
         #[cfg(test)] module do not"
    );
}

#[test]
fn p1_is_inert_off_the_delivery_path() {
    assert_eq!(fire("p1_unwrap.rs", FileContext::default()), vec![]);
}

#[test]
fn a1_transitive_reaches_an_allocation_two_calls_deep_with_the_chain() {
    let diags = fire_diags("a1t_chain.rs", FileContext::default());
    assert_eq!(
        diags.iter().map(|d| (d.rule, d.line)).collect::<Vec<_>>(),
        vec![(Rule::A1, 19)],
        "the push in leaf() fires once via root(); the lint:allow(A1) on \
         pruned_root's call edge prunes that traversal"
    );
    assert!(
        diags[0].message.contains("call chain: Pool::root → Pool::middle → Pool::leaf"),
        "diagnostic must carry the root → site chain, got: {}",
        diags[0].message
    );
}

#[test]
fn f1_flags_tainted_indexing_unless_it_flowed_through_a_sanitizer() {
    let f1 = FileContext { f1: true, ..FileContext::default() };
    assert_eq!(
        fire("f1_taint.rs", f1),
        vec![(Rule::F1, 32), (Rule::F1, 41)],
        "store's unsanitized va and mmio_load's raw tainted index fire; \
         load's pa passed through the lint:checks(F1) translate and does not"
    );
}

#[test]
fn f1_is_inert_outside_protection_crates() {
    assert_eq!(fire("f1_taint.rs", FileContext::default()), vec![]);
}

#[test]
fn p1_transitive_reaches_a_panic_below_a_delivery_root_with_the_chain() {
    let delivery = FileContext { delivery_path: true, ..FileContext::default() };
    let diags = fire_diags("p1t_chain.rs", delivery);
    assert_eq!(diags.iter().map(|d| (d.rule, d.line)).collect::<Vec<_>>(), vec![(Rule::P1, 16)]);
    assert!(
        diags[0].message.contains("call chain: Rx::deliver → Rx::commit"),
        "diagnostic must carry the root → site chain, got: {}",
        diags[0].message
    );
}

#[test]
fn hot_path_marker_binds_through_doc_comments_and_attributes() {
    assert_eq!(
        fire("hot_marker_binding.rs", FileContext::default()),
        vec![(Rule::A1, 14)],
        "a doc comment and #[...] attributes between the marker and the fn \
         must not unbind lint:hot_path"
    );
}

#[test]
fn allow_escape_suppresses_with_reason_and_is_flagged_without() {
    assert_eq!(
        fire("allow_escape.rs", det()),
        vec![(Rule::L0, 8), (Rule::D1, 9)],
        "a reasoned allow waives its rule; a reasonless allow is an L0 \
         diagnostic and waives nothing"
    );
}
