//! The linter's own acceptance test: the workspace it lives in must be
//! clean. This is what makes the invariants *stick* — any future
//! HashMap on a simulated path, allocation in a hot path, bare
//! `unsafe`, or unjustified delivery-path panic fails `cargo test`.

use shrimp_lint::workspace::{lint_workspace, render_workspace_callgraph};

#[test]
fn the_whole_workspace_is_lint_clean() {
    let root = format!("{}/../..", env!("CARGO_MANIFEST_DIR"));
    let diags = lint_workspace(std::path::Path::new(&root)).expect("walking workspace sources");
    assert!(
        diags.is_empty(),
        "shrimp-lint found {} violation(s):\n{}",
        diags.len(),
        diags.iter().map(|d| format!("  {d}\n")).collect::<String>()
    );
}

/// The committed call-graph dump is the reviewable record of what the
/// hot-path proofs cover; it must match what the analyzer derives from
/// the sources in this checkout.
#[test]
fn the_committed_callgraph_dump_is_in_sync() {
    let root = format!("{}/../..", env!("CARGO_MANIFEST_DIR"));
    let derived =
        render_workspace_callgraph(std::path::Path::new(&root)).expect("walking workspace sources");
    let committed_path = format!("{}/callgraph.txt", env!("CARGO_MANIFEST_DIR"));
    let committed = std::fs::read_to_string(&committed_path)
        .unwrap_or_else(|e| panic!("reading {committed_path}: {e}"));
    assert!(
        derived == committed,
        "crates/lint/callgraph.txt is stale; regenerate with\n  \
         cargo run -p shrimp-lint -- --callgraph > crates/lint/callgraph.txt"
    );
}
