//! The linter's own acceptance test: the workspace it lives in must be
//! clean. This is what makes the invariants *stick* — any future
//! HashMap on a simulated path, allocation in a hot path, bare
//! `unsafe`, or unjustified delivery-path panic fails `cargo test`.

use shrimp_lint::workspace::lint_workspace;

#[test]
fn the_whole_workspace_is_lint_clean() {
    let root = format!("{}/../..", env!("CARGO_MANIFEST_DIR"));
    let diags = lint_workspace(std::path::Path::new(&root)).expect("walking workspace sources");
    assert!(
        diags.is_empty(),
        "shrimp-lint found {} violation(s):\n{}",
        diags.len(),
        diags.iter().map(|d| format!("  {d}\n")).collect::<String>()
    );
}
