//! Determinism of the parallel engine: `Multicomputer::run` must produce
//! **bit-identical** simulated timelines and receiver memory at every
//! thread count — including `threads = 1` versus the pre-existing serial
//! driver — and the cross-shard merge order must equal the canonical
//! serial event order. These are the contracts `DESIGN.md` §6b states;
//! the CI determinism job runs exactly this suite.

use proptest::prelude::*;

use shrimp::{Multicomputer, MulticomputerConfig, NodePlan, PacketClass, SendOp};
use shrimp_mem::VirtAddr;
use shrimp_os::Pid;
use shrimp_sim::{merge_tag, EventQueue, MergeQueue, SimTime};

const SEND_BASE: u64 = 0x10_0000;
const RECV_BASE: u64 = 0x40_0000;

/// An `n`-node machine with disjoint sender→receiver pairs (`2p → 2p+1`)
/// and a plan of `msgs` sends of `bytes` bytes per pair. Every pair's
/// fill pattern depends on the sender index so receiver memories differ.
fn paired_stream(n: u16, msgs: usize, bytes: u64) -> (Multicomputer, Vec<NodePlan>) {
    let mut mc = Multicomputer::new(n, MulticomputerConfig::default());
    let mut plans = Vec::new();
    for p in 0..(n as usize / 2) {
        let (s, r) = (2 * p, 2 * p + 1);
        let spid = mc.spawn_process(s);
        let rpid = mc.spawn_process(r);
        mc.map_user_buffer(s, spid, SEND_BASE, 2).unwrap();
        mc.map_user_buffer(r, rpid, RECV_BASE, 2).unwrap();
        let dev = mc.export(r, rpid, VirtAddr::new(RECV_BASE), 2, s, spid).unwrap();
        let fill: Vec<u8> = (0..bytes).map(|i| (i as u8) ^ (s as u8)).collect();
        mc.write_user(s, spid, VirtAddr::new(SEND_BASE), &fill).unwrap();
        plans.push(NodePlan {
            node: s,
            ops: vec![
                SendOp {
                    pid: spid,
                    src_va: VirtAddr::new(SEND_BASE),
                    dev_page: dev,
                    dev_off: 0,
                    nbytes: bytes,
                    class: PacketClass::User,
                };
                msgs
            ],
        });
    }
    (mc, plans)
}

#[test]
fn digests_are_identical_across_thread_counts() {
    // 2-, 8- and 16-node streams, the sizes the throughput bench sweeps.
    for (nodes, msgs, bytes) in [(2u16, 40, 1024u64), (8, 25, 1024), (16, 15, 512)] {
        let mut digests = Vec::new();
        for threads in [1usize, 2, 4] {
            let (mut mc, plans) = paired_stream(nodes, msgs, bytes);
            let report = mc.run(&plans, threads).unwrap();
            assert_eq!(report.messages, (nodes as u64 / 2) * msgs as u64);
            digests.push(mc.state_digest());
        }
        assert_eq!(digests[0], digests[1], "{nodes}-node: 1 vs 2 threads");
        assert_eq!(digests[1], digests[2], "{nodes}-node: 2 vs 4 threads");
    }
}

#[test]
fn parallel_engine_matches_the_serial_driver() {
    // The pre-parallel path: one `send` at a time, `propagate` after each.
    let (mut serial, plans) = paired_stream(8, 20, 768);
    for plan in &plans {
        for op in &plan.ops {
            serial.send(plan.node, op.pid, op.src_va, op.dev_page, op.dev_off, op.nbytes).unwrap();
        }
    }
    serial.run_until_quiet();

    // Snapshot the digest before touching the machine again: `read_user`
    // itself mutates kernel state (context switch, PTE status bits).
    let serial_digest = serial.state_digest();
    let serial_mem: Vec<Vec<u8>> = (1..8)
        .step_by(2)
        .map(|r| serial.read_user(r, Pid::new(1), VirtAddr::new(RECV_BASE), 768).unwrap())
        .collect();

    for threads in [1usize, 3] {
        let (mut par, plans) = paired_stream(8, 20, 768);
        par.run(&plans, threads).unwrap();
        assert_eq!(
            par.state_digest(),
            serial_digest,
            "threads={threads} diverged from the serial driver"
        );
        for (i, r) in (1..8).step_by(2).enumerate() {
            let b = par.read_user(r, Pid::new(1), VirtAddr::new(RECV_BASE), 768).unwrap();
            assert_eq!(serial_mem[i], b, "receiver {r} memory diverged at threads={threads}");
        }
    }
}

#[test]
fn unified_engine_reproduces_the_serial_driver_bytes() {
    // The single-engine contract: the old serial API (`send` +
    // `run_until_quiet`) and the unified `run` entry point are the same
    // delivery core, so `state_digest` AND the exported trace bytes must
    // be identical — serial versus every thread count.
    let (mut serial, plans) = paired_stream(8, 20, 1024);
    serial.set_tracing(true);
    for plan in &plans {
        for op in &plan.ops {
            serial.send(plan.node, op.pid, op.src_va, op.dev_page, op.dev_off, op.nbytes).unwrap();
        }
    }
    serial.run_until_quiet();
    let serial_digest = serial.state_digest();
    let serial_trace = serial.export_trace();
    assert!(serial_trace.contains("\"ph\":\"X\""), "serial trace must contain spans");

    for threads in [1usize, 2, 4] {
        let (mut mc, plans) = paired_stream(8, 20, 1024);
        mc.set_tracing(true);
        mc.run(&plans, threads).unwrap();
        assert_eq!(
            mc.state_digest(),
            serial_digest,
            "threads={threads}: unified engine digest diverged from the serial driver"
        );
        assert_eq!(
            mc.export_trace(),
            serial_trace,
            "threads={threads}: unified engine trace bytes diverged from the serial driver"
        );
    }
}

#[test]
fn tracing_is_invisible_to_state_digests() {
    // Satellite: the flight recorder is pure observation. Enabling it must
    // not move a single clock or byte — digests match the untraced run at
    // every thread count.
    for threads in [1usize, 2, 4] {
        let (mut plain, plans) = paired_stream(8, 15, 1024);
        plain.run(&plans, threads).unwrap();
        let (mut traced, plans) = paired_stream(8, 15, 1024);
        traced.set_tracing(true);
        traced.run(&plans, threads).unwrap();
        assert!(!traced.recorder().is_empty(), "tracing on but nothing recorded");
        assert_eq!(
            plain.state_digest(),
            traced.state_digest(),
            "threads={threads}: tracing changed the simulated timeline"
        );
    }
}

#[test]
fn traces_and_stats_are_bit_identical_across_thread_counts() {
    // The exported Perfetto JSON and the combined stats view are pure
    // functions of the simulated timeline: any thread count must produce
    // byte-identical output (the recorder merges shard rings in commit
    // order, exactly the serial event order).
    let mut traces = Vec::new();
    let mut stats = Vec::new();
    for threads in [1usize, 2, 4] {
        let (mut mc, plans) = paired_stream(8, 20, 1024);
        mc.set_tracing(true);
        mc.run(&plans, threads).unwrap();
        traces.push(mc.export_trace());
        stats.push(mc.stats());
    }
    assert!(traces[0].contains("\"ph\":\"X\""), "trace must contain spans");
    assert_eq!(traces[0], traces[1], "trace: 1 vs 2 threads");
    assert_eq!(traces[1], traces[2], "trace: 2 vs 4 threads");
    assert_eq!(stats[0], stats[1], "stats: 1 vs 2 threads");
    assert_eq!(stats[1], stats[2], "stats: 2 vs 4 threads");
}

#[test]
fn merged_parallel_stats_equal_serial_stats() {
    // Satellite: the combined stats view after a parallel run must union
    // the per-shard counters into exactly what the serial driver counts.
    let (mut serial, plans) = paired_stream(8, 20, 768);
    for plan in &plans {
        for op in &plan.ops {
            serial.send(plan.node, op.pid, op.src_va, op.dev_page, op.dev_off, op.nbytes).unwrap();
        }
    }
    serial.run_until_quiet();
    let serial_stats = serial.stats();
    assert!(serial_stats.get("packets_sent") > 0 || serial_stats.iter().count() > 0);

    let (mut par, plans) = paired_stream(8, 20, 768);
    par.run(&plans, 2).unwrap();
    assert_eq!(par.stats(), serial_stats, "parallel merge lost or double-counted a counter");
}

#[test]
fn digests_distinguish_different_workloads() {
    // A digest that never changes proves nothing: different payload sizes
    // must produce different machine states.
    let (mut a, plans) = paired_stream(2, 5, 256);
    a.run(&plans, 2).unwrap();
    let (mut b, plans) = paired_stream(2, 5, 512);
    b.run(&plans, 2).unwrap();
    assert_ne!(a.state_digest(), b.state_digest());
}

#[test]
fn big_mesh_digest_and_trace_are_invariant_across_windows_and_threads() {
    // Big-machine satellite: on a 256-node mesh, every combination of
    // epoch window count (K = 1, 2, 8 lookahead windows per barrier
    // crossing) and worker count must reproduce the serial driver's
    // digest AND trace bytes exactly. Window count only changes how much
    // work runs between barriers — never the commit order — so nine
    // schedules collapse onto one timeline.
    let (mut serial, plans) = paired_stream(256, 10, 512);
    serial.set_tracing(true);
    for plan in &plans {
        for op in &plan.ops {
            serial.send(plan.node, op.pid, op.src_va, op.dev_page, op.dev_off, op.nbytes).unwrap();
        }
    }
    serial.run_until_quiet();
    let serial_digest = serial.state_digest();
    let serial_trace = serial.export_trace();
    assert!(serial_trace.contains("\"ph\":\"X\""), "serial trace must contain spans");

    for windows in [1usize, 2, 8] {
        for threads in [1usize, 2, 4] {
            let (mut mc, plans) = paired_stream(256, 10, 512);
            mc.set_epoch_windows(Some(windows));
            mc.set_tracing(true);
            mc.run(&plans, threads).unwrap();
            assert_eq!(
                mc.state_digest(),
                serial_digest,
                "K={windows} t={threads}: digest diverged from the serial driver"
            );
            assert_eq!(
                mc.export_trace(),
                serial_trace,
                "K={windows} t={threads}: trace bytes diverged from the serial driver"
            );
        }
    }
}

#[test]
fn merge_queue_ties_break_by_source_then_sequence() {
    let mut q = MergeQueue::new();
    let t = SimTime::from_nanos(100);
    q.push(t, merge_tag(3, 0), "late source");
    q.push(t, merge_tag(1, 1), "early source, later seq");
    q.push(t, merge_tag(1, 0), "early source, first seq");
    let order: Vec<_> = std::iter::from_fn(|| q.pop_within(None).map(|(_, i)| i)).collect();
    assert_eq!(order, ["early source, first seq", "early source, later seq", "late source"]);
}

proptest! {
    /// For any batch of timestamped packets with per-source sequence
    /// numbers, popping a [`MergeQueue`] — however thread interleaving
    /// ordered the insertions — yields exactly the order a serial
    /// [`EventQueue`] produces when fed the canonical `(time, tag)`
    /// sequence. This is the reduction the engine's determinism rests on:
    /// the parallel commit order *is* the serial event order.
    #[test]
    fn merge_order_equals_serial_event_order(
        batch in proptest::collection::vec((0u64..300, 0u16..6), 1..80),
        shuffle_seed in any::<u64>(),
    ) {
        // Tag each item in generation order (per-source sequence numbers).
        let mut next_seq = [0u64; 6];
        let keyed: Vec<(SimTime, u64, usize)> = batch
            .iter()
            .enumerate()
            .map(|(i, &(at, src))| {
                let tag = merge_tag(src, next_seq[src as usize]);
                next_seq[src as usize] += 1;
                (SimTime::from_nanos(at), tag, i)
            })
            .collect();

        // Canonical serial order: schedule into an EventQueue sorted by
        // (time, tag) — its insertion-order tie-break then matches the
        // tag order — and drain it.
        let mut canonical = keyed.clone();
        canonical.sort_by_key(|&(at, tag, _)| (at, tag));
        let mut eq = EventQueue::new();
        for &(at, _, item) in &canonical {
            eq.schedule(at, item);
        }
        let serial: Vec<(SimTime, usize)> =
            eq.drain_all().into_iter().map(|e| (e.at, e.payload)).collect();

        // Adversarial insertion order for the MergeQueue.
        let mut shuffled = keyed.clone();
        let mut rng = shuffle_seed | 1;
        for i in (1..shuffled.len()).rev() {
            rng = rng.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            shuffled.swap(i, (rng >> 33) as usize % (i + 1));
        }
        let mut mq = MergeQueue::new();
        for &(at, tag, item) in &shuffled {
            mq.push(at, tag, item);
        }
        let merged: Vec<(SimTime, usize)> =
            std::iter::from_fn(|| mq.pop_within(None)).collect();

        prop_assert_eq!(merged, serial);
    }

    /// The calendar wheel against a binary heap, under *interleaved*
    /// pushes and horizon-bounded pops — the access pattern the epoch
    /// loop actually drives. Times span several rungs, so the stream
    /// exercises the consumed-region (`cur`) insert path, slab buckets,
    /// the sorted spill lane, the overflow lane and rung re-seeding; at
    /// every step the wheel must pop exactly what the heap pops.
    #[test]
    fn wheel_pops_match_a_binary_heap_under_interleaved_horizons(
        script in proptest::collection::vec(
            (0u8..4, 0u64..200_000, 0u64..200_000),
            1..200,
        ),
    ) {
        use std::cmp::Reverse;
        use std::collections::BinaryHeap;

        let mut wheel: MergeQueue<usize> = MergeQueue::new();
        let mut heap: BinaryHeap<Reverse<(u64, u64, usize)>> = BinaryHeap::new();
        let mut next_tag = 0u64;

        // Reference semantics of `pop_within`: pop the minimum
        // `(time, tag)` entry iff its time is at or before the horizon.
        let heap_pop = |heap: &mut BinaryHeap<Reverse<(u64, u64, usize)>>,
                            horizon: Option<u64>| {
            match (heap.peek(), horizon) {
                (Some(&Reverse((at, _, _))), Some(h)) if at > h => None,
                _ => heap.pop().map(|Reverse((at, _, item))| (at, item)),
            }
        };

        for (i, &(kind, at, h)) in script.iter().enumerate() {
            if kind < 3 {
                // Push-heavy mix (3:1) so pops see a populated wheel.
                wheel.push(SimTime::from_nanos(at), next_tag, i);
                heap.push(Reverse((at, next_tag, i)));
                next_tag += 1;
            } else {
                let horizon = (h % 2 == 0).then_some(h);
                let got = wheel.pop_within(horizon.map(SimTime::from_nanos));
                let want = heap_pop(&mut heap, horizon);
                prop_assert_eq!(
                    got.map(|(t, item)| (t.as_nanos(), item)),
                    want,
                    "pop under horizon {:?} diverged at step {}",
                    horizon,
                    i
                );
            }
        }

        // Drain both to empty: the full residual orders must agree too.
        loop {
            let got = wheel.pop_within(None);
            let want = heap_pop(&mut heap, None);
            prop_assert_eq!(got.map(|(t, item)| (t.as_nanos(), item)), want, "drain diverged");
            if want.is_none() {
                break;
            }
        }
        prop_assert!(wheel.is_empty());
    }
}
