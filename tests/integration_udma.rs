//! Cross-crate integration tests of the UDMA mechanism driven through full
//! virtual addressing: machine + MMU + proxy spaces + controller.

use shrimp_devices::{StreamSink, StreamSource};
use shrimp_machine::{Machine, MachineConfig, UdmaMode};
use shrimp_mem::{Pfn, PhysAddr, VirtAddr, Vpn, DEV_PROXY_BASE, PAGE_SIZE};
use shrimp_mmu::{Mode, PageTable, Pte, PteFlags};
use shrimp_sim::CostModel;
use udma_core::UdmaStatus;

fn user_rw() -> PteFlags {
    PteFlags::VALID | PteFlags::USER | PteFlags::WRITABLE
}

fn proxy_flags() -> PteFlags {
    user_rw() | PteFlags::UNCACHED | PteFlags::PROXY
}

/// Builds a machine plus a page table mapping:
/// - user page at VPN 16 -> PFN 2 (rw),
/// - its memory proxy page,
/// - device proxy page 0.
fn setup(mode: UdmaMode) -> (Machine<StreamSink>, PageTable, VirtAddr, VirtAddr, VirtAddr) {
    let mut machine = Machine::new(
        MachineConfig { mem_bytes: 64 * PAGE_SIZE, udma: mode, ..MachineConfig::default() },
        StreamSink::new("sink"),
    );
    let layout = machine.layout();
    let mut pt = PageTable::new();
    let user_va = VirtAddr::new(16 * PAGE_SIZE);
    pt.map(user_va.page(), Pte::new(Pfn::new(2), user_rw()));
    let vproxy = layout.proxy_of_virt(user_va).unwrap();
    let pproxy = layout.proxy_of_phys(PhysAddr::new(2 * PAGE_SIZE)).unwrap();
    pt.map(vproxy.page(), Pte::new(pproxy.page(), proxy_flags()));
    let vdev = VirtAddr::new(DEV_PROXY_BASE);
    pt.map(vdev.page(), Pte::new(Pfn::new(vdev.page().raw()), proxy_flags()));
    machine.write_bytes(&mut pt, user_va, b"integration payload.", Mode::User).unwrap();
    (machine, pt, user_va, vproxy, vdev)
}

#[test]
fn basic_and_queued_modes_deliver_identically() {
    for mode in [UdmaMode::Basic, UdmaMode::Queued(8)] {
        let (mut m, mut pt, _va, vproxy, vdev) = setup(mode);
        m.store(&mut pt, vdev, 20, Mode::User).unwrap();
        let status = UdmaStatus::unpack(m.load(&mut pt, vproxy, Mode::User).unwrap());
        assert!(status.started(), "{mode:?}: {status}");
        let done = m.udma_drained_at();
        m.advance_to(done);
        assert_eq!(m.device().writes()[0].1, b"integration payload.", "{mode:?}");
    }
}

#[test]
fn status_word_sequence_over_a_transfer_lifetime() {
    let (mut m, mut pt, _va, vproxy, vdev) = setup(UdmaMode::Basic);

    // Idle: LOAD is a failed initiation with INVALID set.
    let s = UdmaStatus::unpack(m.load(&mut pt, vproxy, Mode::User).unwrap());
    assert!(s.initiation && s.invalid && !s.transferring);

    // DestLoaded -> Transferring on the initiating LOAD.
    m.store(&mut pt, vdev, 4096, Mode::User).unwrap();
    let s = UdmaStatus::unpack(m.load(&mut pt, vproxy, Mode::User).unwrap());
    assert!(s.started() && s.matches && s.transferring);
    assert_eq!(s.remaining_bytes, 4096);

    // Mid-flight: MATCH + decreasing REMAINING-BYTES.
    let mid = m.now() + m.cost().bus_transfer(2048);
    m.clock_advance_for_test(mid);
    let s = UdmaStatus::unpack(m.load(&mut pt, vproxy, Mode::User).unwrap());
    assert!(s.matches && s.transferring);
    assert!(s.remaining_bytes < 4096 && s.remaining_bytes > 0, "rem={}", s.remaining_bytes);

    // Done: INVALID again, MATCH clear.
    let done = m.udma_drained_at();
    m.advance_to(done);
    let s = UdmaStatus::unpack(m.load(&mut pt, vproxy, Mode::User).unwrap());
    assert!(s.invalid && !s.matches);
}

// Small extension trait so the test can advance absolute time.
trait ClockExt {
    fn clock_advance_for_test(&mut self, to: shrimp_sim::SimTime);
}
impl<D: shrimp_devices::Device> ClockExt for Machine<D> {
    fn clock_advance_for_test(&mut self, to: shrimp_sim::SimTime) {
        self.advance_to(to);
    }
}

#[test]
fn mmu_protection_gates_proxy_access() {
    let (mut m, mut pt, _va, vproxy, vdev) = setup(UdmaMode::Basic);
    // Make the device proxy page kernel-only: user STOREs must fault.
    pt.clear_flags(vdev.page(), PteFlags::USER);
    m.mmu_mut().flush_page(vdev.page());
    assert!(m.store(&mut pt, vdev, 64, Mode::User).is_err());
    // Kernel mode still passes (same hardware, privileged access).
    assert!(m.store(&mut pt, vdev, 64, Mode::Kernel).is_ok());
    let s = UdmaStatus::unpack(m.load(&mut pt, vproxy, Mode::Kernel).unwrap());
    assert!(s.started());
}

#[test]
fn write_protected_proxy_page_blocks_dma_destination() {
    // I3's hardware half: a read-only memory proxy page cannot be STOREd.
    let (mut m, mut pt, _va, vproxy, vdev) = setup(UdmaMode::Basic);
    pt.clear_flags(vproxy.page(), PteFlags::WRITABLE);
    m.mmu_mut().flush_page(vproxy.page());
    assert!(m.store(&mut pt, vproxy, 64, Mode::User).is_err(), "store must fault");
    // But the page can still *source* a transfer (LOAD side).
    m.store(&mut pt, vdev, 20, Mode::User).unwrap();
    let s = UdmaStatus::unpack(m.load(&mut pt, vproxy, Mode::User).unwrap());
    assert!(s.started());
}

#[test]
fn device_to_memory_via_virtual_proxies() {
    let mut machine = Machine::new(
        MachineConfig { mem_bytes: 64 * PAGE_SIZE, ..MachineConfig::default() },
        StreamSource::new("pattern", 0x77),
    );
    let layout = machine.layout();
    let mut pt = PageTable::new();
    let user_va = VirtAddr::new(5 * PAGE_SIZE);
    pt.map(user_va.page(), Pte::new(Pfn::new(9), user_rw() | PteFlags::DIRTY));
    let vproxy = layout.proxy_of_virt(user_va).unwrap();
    let pproxy = layout.proxy_of_phys(PhysAddr::new(9 * PAGE_SIZE)).unwrap();
    pt.map(vproxy.page(), Pte::new(pproxy.page(), proxy_flags()));
    let vdev = VirtAddr::new(DEV_PROXY_BASE + 3 * PAGE_SIZE);
    pt.map(vdev.page(), Pte::new(Pfn::new(vdev.page().raw()), proxy_flags()));

    // STORE names the *memory proxy* destination; LOAD the device source.
    machine.store(&mut pt, vproxy, 128, Mode::User).unwrap();
    let s = UdmaStatus::unpack(machine.load(&mut pt, vdev, Mode::User).unwrap());
    assert!(s.started(), "{s}");
    let done = machine.udma_drained_at();
    machine.advance_to(done);

    let got = machine.read_bytes(&mut pt, user_va, 128, Mode::User).unwrap();
    let src = StreamSource::new("check", 0x77);
    let dev_base = 3 * PAGE_SIZE;
    for (i, &b) in got.iter().enumerate() {
        assert_eq!(b, src.expected_byte(dev_base + i as u64), "byte {i}");
    }
}

#[test]
fn initiation_cost_matches_paper_figure() {
    let (mut m, mut pt, _va, vproxy, vdev) = setup(UdmaMode::Basic);
    // Warm TLB entries.
    m.store(&mut pt, vdev, 8, Mode::User).unwrap();
    let _ = m.load(&mut pt, vproxy, Mode::User).unwrap();
    m.kernel_inval_udma();

    let c = CostModel::default();
    let t0 = m.now();
    m.advance(c.udma_user_check); // the §8 alignment check
    m.store(&mut pt, vdev, 8, Mode::User).unwrap();
    let _ = m.load(&mut pt, vproxy, Mode::User).unwrap();
    let us = (m.now() - t0).as_micros_f64();
    assert!((2.6..3.0).contains(&us), "initiation = {us:.2}us (paper: ~2.8us)");
}

#[test]
fn queued_mode_accepts_back_to_back_pages_without_busy() {
    let mut machine = Machine::new(
        MachineConfig {
            mem_bytes: 64 * PAGE_SIZE,
            udma: UdmaMode::Queued(16),
            ..MachineConfig::default()
        },
        StreamSink::new("sink"),
    );
    let layout = machine.layout();
    let mut pt = PageTable::new();
    for i in 0..4u64 {
        let va = VirtAddr::new((16 + i) * PAGE_SIZE);
        pt.map(va.page(), Pte::new(Pfn::new(2 + i), user_rw()));
        let vproxy = layout.proxy_of_virt(va).unwrap();
        let pproxy = layout.proxy_of_phys(PhysAddr::new((2 + i) * PAGE_SIZE)).unwrap();
        pt.map(vproxy.page(), Pte::new(pproxy.page(), proxy_flags()));
        let vdev = VirtAddr::new(DEV_PROXY_BASE + i * PAGE_SIZE);
        pt.map(vdev.page(), Pte::new(Pfn::new(vdev.page().raw()), proxy_flags()));
    }
    // Four initiations in a row, all accepted instantly (2 refs per page).
    for i in 0..4u64 {
        let vdev = VirtAddr::new(DEV_PROXY_BASE + i * PAGE_SIZE);
        let vproxy = layout.proxy_of_virt(VirtAddr::new((16 + i) * PAGE_SIZE)).unwrap();
        machine.store(&mut pt, vdev, PAGE_SIZE as i64, Mode::User).unwrap();
        let s = UdmaStatus::unpack(machine.load(&mut pt, vproxy, Mode::User).unwrap());
        assert!(s.started(), "page {i}: {s}");
    }
    let done = machine.udma_drained_at();
    machine.advance_to(done);
    assert_eq!(machine.device().bytes_received(), 4 * PAGE_SIZE);
}

#[test]
fn tlb_shootdown_keeps_proxy_mappings_coherent() {
    let (mut m, mut pt, _va, vproxy, vdev) = setup(UdmaMode::Basic);
    // Cache the proxy translation.
    let _ = m.load(&mut pt, vproxy, Mode::User).unwrap();
    // Kernel remaps the user page to a different frame and (per I2) must
    // update the proxy PTE + shoot down the TLB.
    let layout = m.layout();
    pt.map(VirtAddr::new(16 * PAGE_SIZE).page(), Pte::new(Pfn::new(7), user_rw()));
    let new_pproxy = layout.proxy_of_phys(PhysAddr::new(7 * PAGE_SIZE)).unwrap();
    pt.map(vproxy.page(), Pte::new(new_pproxy.page(), proxy_flags()));
    m.mmu_mut().flush_page(vproxy.page());
    m.mmu_mut().flush_page(VirtAddr::new(16 * PAGE_SIZE).page());
    // Fill the *new* frame and transfer through the proxy: data must come
    // from frame 7, not stale frame 2.
    m.write_bytes(&mut pt, VirtAddr::new(16 * PAGE_SIZE), b"fresh frame data", Mode::User).unwrap();
    m.store(&mut pt, vdev, 16, Mode::User).unwrap();
    let s = UdmaStatus::unpack(m.load(&mut pt, vproxy, Mode::User).unwrap());
    assert!(s.started());
    let done = m.udma_drained_at();
    m.advance_to(done);
    assert_eq!(m.device().writes()[0].1, b"fresh frame data");
}

#[test]
fn machine_accounts_time_for_every_reference() {
    let (mut m, mut pt, va, vproxy, _vdev) = setup(UdmaMode::Basic);
    let t0 = m.now();
    let _ = m.load(&mut pt, va, Mode::User).unwrap(); // cached memory ref
    let cached = m.now() - t0;
    let t1 = m.now();
    let _ = m.load(&mut pt, vproxy, Mode::User).unwrap(); // uncached proxy ref
    let proxy = m.now() - t1;
    assert!(proxy > cached * 10, "proxy ref {proxy} must dwarf cached ref {cached}");
}

#[test]
fn vpn_pfn_mapping_spans_pages_correctly() {
    // Regression guard on the address math used throughout: a buffer
    // crossing three pages maps byte-exactly.
    let (mut m, mut pt, _va, _vp, _vd) = setup(UdmaMode::Basic);
    for (vpn, pfn) in [(30u64, 11u64), (31, 5), (32, 19)] {
        pt.map(Vpn::new(vpn), Pte::new(Pfn::new(pfn), user_rw()));
    }
    let base = VirtAddr::new(30 * PAGE_SIZE + PAGE_SIZE - 3);
    let data: Vec<u8> = (0..PAGE_SIZE + 6).map(|i| (i * 7 % 251) as u8).collect();
    m.write_bytes(&mut pt, base, &data, Mode::User).unwrap();
    assert_eq!(m.read_bytes(&mut pt, base, data.len() as u64, Mode::User).unwrap(), data);
}
