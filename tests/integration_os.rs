//! Kernel-level integration tests: demand paging, invariants under
//! pressure, traditional-vs-UDMA equivalence, multiprogramming.

use shrimp_devices::{StreamSink, StreamSource};
use shrimp_machine::{MachineConfig, UdmaMode};
use shrimp_mem::{VirtAddr, PAGE_SIZE};
use shrimp_os::{DmaStrategy, Node, NodeConfig, Trap};
use shrimp_sim::{CostModel, SimDuration, SplitMix64};

fn node_with(frames: Option<u64>, mode: UdmaMode) -> Node<StreamSink> {
    let config = NodeConfig {
        machine: MachineConfig {
            mem_bytes: 512 * PAGE_SIZE,
            udma: mode,
            ..MachineConfig::default()
        },
        user_frames: frames,
    };
    Node::new(config, StreamSink::new("sink"))
}

#[test]
fn udma_and_kernel_dma_deliver_identical_bytes() {
    let mut n = node_with(None, UdmaMode::Basic);
    let pid = n.spawn();
    n.mmap(pid, 0x10_0000, 3, true).unwrap();
    n.grant_device_proxy(pid, 0, 3, true).unwrap();
    let data: Vec<u8> = (0..2 * PAGE_SIZE + 512).map(|i| (i % 239) as u8).collect();
    n.write_user(pid, VirtAddr::new(0x10_0000), &data).unwrap();

    n.udma_send(pid, VirtAddr::new(0x10_0000), 0, 0, data.len() as u64).unwrap();
    let udma_bytes: Vec<u8> =
        n.machine().device().writes().iter().flat_map(|(_, d, _)| d.clone()).collect();

    let mut n2 = node_with(None, UdmaMode::Basic);
    let pid2 = n2.spawn();
    n2.mmap(pid2, 0x10_0000, 3, true).unwrap();
    n2.write_user(pid2, VirtAddr::new(0x10_0000), &data).unwrap();
    n2.sys_dma_to_device(
        pid2,
        VirtAddr::new(0x10_0000),
        0,
        data.len() as u64,
        DmaStrategy::PinPages,
    )
    .unwrap();
    let kernel_bytes: Vec<u8> =
        n2.machine().device().writes().iter().flat_map(|(_, d, _)| d.clone()).collect();

    assert_eq!(udma_bytes, data);
    assert_eq!(kernel_bytes, data);
}

#[test]
fn bounce_buffer_and_pinning_strategies_agree() {
    for strategy in [DmaStrategy::PinPages, DmaStrategy::BounceBuffer] {
        let mut n = node_with(None, UdmaMode::Basic);
        let pid = n.spawn();
        n.mmap(pid, 0x20_0000, 2, true).unwrap();
        let data = vec![0x3cu8; PAGE_SIZE as usize + 17];
        n.write_user(pid, VirtAddr::new(0x20_0000), &data).unwrap();
        n.sys_dma_to_device(pid, VirtAddr::new(0x20_0000), 0, data.len() as u64, strategy).unwrap();
        let got: Vec<u8> =
            n.machine().device().writes().iter().flat_map(|(_, d, _)| d.clone()).collect();
        assert_eq!(got, data, "{strategy:?}");
    }
}

#[test]
fn paging_pressure_with_concurrent_udma_keeps_invariants() {
    // Deterministic random workload: many pages, few frames, transfers in
    // flight; invariants re-checked continuously.
    let mut n = node_with(Some(6), UdmaMode::Basic);
    let pid = n.spawn();
    let pages = 24u64;
    n.mmap(pid, 0x10_0000, pages, true).unwrap();
    n.grant_device_proxy(pid, 0, 4, true).unwrap();
    let mut rng = SplitMix64::new(2024);

    for round in 0..120 {
        let page = rng.next_below(pages);
        let va = VirtAddr::new(0x10_0000 + page * PAGE_SIZE);
        match rng.next_below(4) {
            0 => {
                n.user_store(pid, va, round as i64).unwrap();
            }
            1 => {
                let _ = n.user_load(pid, va).unwrap();
            }
            2 => {
                // A small UDMA send sourcing a random page.
                let r = n.udma_send(pid, va, rng.next_below(4), 0, 256);
                assert!(r.is_ok(), "send failed: {r:?}");
            }
            _ => {
                let _ = n.clean_page(pid, va.page()).unwrap();
            }
        }
        n.check_invariants().unwrap_or_else(|e| panic!("round {round}: {e}"));
    }
    assert!(n.stats().get("evictions") > 0, "pressure must page");
}

#[test]
fn swapped_pages_round_trip_through_backing_store() {
    let mut n = node_with(Some(3), UdmaMode::Basic);
    let pid = n.spawn();
    n.mmap(pid, 0x10_0000, 10, true).unwrap();
    // Unique content per page.
    for i in 0..10u64 {
        n.user_store(pid, VirtAddr::new(0x10_0000 + i * PAGE_SIZE + 8), (i * 1000 + 1) as i64)
            .unwrap();
    }
    // Everything reads back despite only 3 frames.
    for i in (0..10u64).rev() {
        assert_eq!(
            n.user_load(pid, VirtAddr::new(0x10_0000 + i * PAGE_SIZE + 8)).unwrap(),
            i * 1000 + 1
        );
    }
    assert!(n.swap().write_count() > 0);
    assert!(n.swap().read_count() > 0);
}

#[test]
fn i3_content_consistency_after_clean_and_incoming_dma() {
    // The full I3 story: receive into a page, clean it, verify the swap
    // copy carries the DMA'd data; receive again and confirm re-dirtying.
    let config = NodeConfig {
        machine: MachineConfig { mem_bytes: 512 * PAGE_SIZE, ..MachineConfig::default() },
        user_frames: Some(8),
    };
    let mut n = Node::new(config, StreamSource::new("pattern", 0x11));
    let pid = n.spawn();
    n.mmap(pid, 0x30_0000, 1, true).unwrap();
    n.grant_device_proxy(pid, 0, 1, true).unwrap();

    // Incoming DMA (device -> memory) via UDMA.
    n.udma_recv(pid, VirtAddr::new(0x30_0000), 0, 0, 64).unwrap();
    let vpn = VirtAddr::new(0x30_0000).page();
    assert!(n.process(pid).unwrap().pt.get(vpn).unwrap().is_dirty(), "I3: page dirty");

    // Clean: the swap copy must contain the device's bytes.
    assert!(n.clean_page(pid, vpn).unwrap());
    n.check_invariants().unwrap();
    let got = n.read_user(pid, VirtAddr::new(0x30_0000), 64).unwrap();
    let src = StreamSource::new("check", 0x11);
    for (i, &b) in got.iter().enumerate() {
        assert_eq!(b, src.expected_byte(i as u64), "byte {i} after clean");
    }

    // Receiving again triggers the I3 write-enable fault path (the proxy
    // was write-protected by the clean).
    let before = n.stats().get("i3_write_enables");
    n.udma_recv(pid, VirtAddr::new(0x30_0000), 0, 4096 - 64, 64).unwrap();
    assert_eq!(n.stats().get("i3_write_enables"), before + 1);
    n.check_invariants().unwrap();
}

#[test]
fn many_processes_share_the_device_without_interference() {
    let mut n = node_with(None, UdmaMode::Basic);
    let mut pids = Vec::new();
    for i in 0..5u64 {
        let pid = n.spawn();
        n.mmap(pid, 0x10_0000, 1, true).unwrap();
        n.grant_device_proxy(pid, i, 1, true).unwrap();
        n.write_user(pid, VirtAddr::new(0x10_0000), &[0xc0 + i as u8; 128]).unwrap();
        pids.push(pid);
    }
    // Interleave sends; every message lands at its own device offset.
    for round in 0..3 {
        for (i, &pid) in pids.iter().enumerate() {
            let r = n.udma_send(pid, VirtAddr::new(0x10_0000), i as u64, (round * 128) as u64, 128);
            r.unwrap();
        }
    }
    let writes = n.machine().device().writes();
    assert_eq!(writes.len(), 15);
    for (dev_addr, data, _) in writes {
        let owner = dev_addr / PAGE_SIZE;
        assert!(data.iter().all(|&b| b == 0xc0 + owner as u8), "cross-talk at {dev_addr:#x}");
    }
    n.check_invariants().unwrap();
}

#[test]
fn queued_hardware_under_os_control() {
    let mut n = node_with(None, UdmaMode::Queued(8));
    let pid = n.spawn();
    n.mmap(pid, 0x10_0000, 8, true).unwrap();
    n.grant_device_proxy(pid, 0, 8, true).unwrap();
    let data = vec![0x66u8; (8 * PAGE_SIZE) as usize];
    n.write_user(pid, VirtAddr::new(0x10_0000), &data).unwrap();
    let r = n.udma_send(pid, VirtAddr::new(0x10_0000), 0, 0, data.len() as u64).unwrap();
    assert_eq!(r.transfers, 8);
    assert_eq!(r.retries, 0, "queue depth 8 absorbs all pages");
    assert_eq!(n.machine().device().bytes_received(), 8 * PAGE_SIZE);
    n.check_invariants().unwrap();
}

#[test]
fn trap_paths_do_not_corrupt_kernel_state() {
    let mut n = node_with(Some(4), UdmaMode::Basic);
    let pid = n.spawn();
    n.mmap(pid, 0x10_0000, 2, true).unwrap();

    // A parade of failures...
    assert!(matches!(
        n.user_load(pid, VirtAddr::new(0x90_0000)).unwrap_err(),
        Trap::SegFault { .. }
    ));
    assert!(n.udma_send(pid, VirtAddr::new(0x10_0000), 0, 0, 64).is_err(), "no grant yet");
    n.grant_device_proxy(pid, 0, 1, false).unwrap(); // read-only grant
    assert!(matches!(
        n.udma_send(pid, VirtAddr::new(0x10_0000), 0, 0, 64).unwrap_err(),
        Trap::ReadOnly { .. }
    ));

    // ...after which normal service continues.
    n.grant_device_proxy(pid, 1, 1, true).unwrap();
    n.write_user(pid, VirtAddr::new(0x10_0000), b"recovered").unwrap();
    // 12-byte aligned transfer (device validates nothing on StreamSink).
    let r = n.udma_send(pid, VirtAddr::new(0x10_0000), 1, 0, 12).unwrap();
    assert_eq!(r.transfers, 1);
    n.check_invariants().unwrap();
}

#[test]
fn elapsed_times_are_deterministic_across_runs() {
    let run = || {
        let mut n = node_with(Some(8), UdmaMode::Basic);
        let pid = n.spawn();
        n.mmap(pid, 0x10_0000, 4, true).unwrap();
        n.grant_device_proxy(pid, 0, 4, true).unwrap();
        n.write_user(pid, VirtAddr::new(0x10_0000), &vec![1u8; 4096]).unwrap();
        let r = n.udma_send(pid, VirtAddr::new(0x10_0000), 0, 0, 4096).unwrap();
        (r.elapsed, n.machine().now())
    };
    assert_eq!(run(), run(), "simulation must be bit-for-bit deterministic");
}

#[test]
fn slow_device_cost_model_changes_only_timing() {
    let fast = {
        let mut n = node_with(None, UdmaMode::Basic);
        let pid = n.spawn();
        n.mmap(pid, 0x10_0000, 1, true).unwrap();
        n.grant_device_proxy(pid, 0, 1, true).unwrap();
        n.write_user(pid, VirtAddr::new(0x10_0000), &[9; 512]).unwrap();
        n.udma_send(pid, VirtAddr::new(0x10_0000), 0, 0, 512).unwrap().elapsed
    };
    let slow = {
        let config = NodeConfig {
            machine: MachineConfig {
                mem_bytes: 512 * PAGE_SIZE,
                cost: CostModel::default().with_bus_mb_per_s(3.3),
                ..MachineConfig::default()
            },
            user_frames: None,
        };
        let mut n = Node::new(config, StreamSink::new("sink"));
        let pid = n.spawn();
        n.mmap(pid, 0x10_0000, 1, true).unwrap();
        n.grant_device_proxy(pid, 0, 1, true).unwrap();
        n.write_user(pid, VirtAddr::new(0x10_0000), &[9; 512]).unwrap();
        n.udma_send(pid, VirtAddr::new(0x10_0000), 0, 0, 512).unwrap().elapsed
    };
    assert!(slow > fast + SimDuration::from_us(100.0), "10x slower bus: {slow} vs {fast}");
}
