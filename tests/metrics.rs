//! The metrics plane's three contracts (DESIGN.md §10):
//!
//! 1. **Determinism** — `Multicomputer::metrics_snapshot()` renders
//!    byte-identical text and JSON at every thread count, because every
//!    pinned metric is a pure function of the simulated timeline (which
//!    is itself bit-identical across shardings).
//! 2. **Invisibility** — instrumenting the hot paths changes no digest:
//!    all four committed golden `state_digest`s still come out of the
//!    bench workloads, including when a run is metered (snapshot
//!    harvested) and sampled (per-epoch gauge ring enabled).
//! 3. **Conservation** — fabric-level and delivery-level drops are
//!    distinct counters whose sum accounts for every undelivered packet.
//!
//! Registered as a `shrimp-bench` test target so it can drive both the
//! raw `Multicomputer` API and the bench workloads.

use shrimp::{Multicomputer, MulticomputerConfig, NodePlan, PacketClass, SendOp};
use shrimp_bench::host_perf;
use shrimp_mem::VirtAddr;

const SEND_BASE: u64 = 0x10_0000;
const RECV_BASE: u64 = 0x40_0000;

/// An `n`-node machine with disjoint sender→receiver pairs (`2p → 2p+1`)
/// and a plan of `msgs` sends of `bytes` bytes per pair — the same
/// workload shape `tests/determinism.rs` pins digests with.
fn paired_stream(n: u16, msgs: usize, bytes: u64) -> (Multicomputer, Vec<NodePlan>) {
    let mut mc = Multicomputer::new(n, MulticomputerConfig::default());
    let mut plans = Vec::new();
    for p in 0..(n as usize / 2) {
        let (s, r) = (2 * p, 2 * p + 1);
        let spid = mc.spawn_process(s);
        let rpid = mc.spawn_process(r);
        mc.map_user_buffer(s, spid, SEND_BASE, 2).unwrap();
        mc.map_user_buffer(r, rpid, RECV_BASE, 2).unwrap();
        let dev = mc.export(r, rpid, VirtAddr::new(RECV_BASE), 2, s, spid).unwrap();
        let fill: Vec<u8> = (0..bytes).map(|i| (i as u8) ^ (s as u8)).collect();
        mc.write_user(s, spid, VirtAddr::new(SEND_BASE), &fill).unwrap();
        plans.push(NodePlan {
            node: s,
            ops: vec![
                SendOp {
                    pid: spid,
                    src_va: VirtAddr::new(SEND_BASE),
                    dev_page: dev,
                    dev_off: 0,
                    nbytes: bytes,
                    class: PacketClass::User,
                };
                msgs
            ],
        });
    }
    (mc, plans)
}

#[test]
fn snapshot_bytes_identical_across_thread_counts_on_256_nodes() {
    let mut texts = Vec::new();
    let mut jsons = Vec::new();
    for threads in [1usize, 2, 4] {
        let (mut mc, plans) = paired_stream(256, 20, 1024);
        mc.run(&plans, threads).unwrap();
        let snap = mc.metrics_snapshot();
        texts.push(snap.render_text());
        jsons.push(snap.render_json());
    }
    assert_eq!(texts[0], texts[1], "snapshot text: 1 vs 2 threads");
    assert_eq!(texts[1], texts[2], "snapshot text: 2 vs 4 threads");
    assert_eq!(jsons[0], jsons[1], "snapshot JSON: 1 vs 2 threads");
    assert_eq!(jsons[1], jsons[2], "snapshot JSON: 2 vs 4 threads");

    // The snapshot is not merely stable but *live*: key figures match
    // the workload (128 pairs × (20 planned + 0 warm) messages).
    let (mut mc, plans) = paired_stream(256, 20, 1024);
    mc.run(&plans, 2).unwrap();
    let snap = mc.metrics_snapshot();
    assert_eq!(snap.get("delivery", "delivered", None), Some(128 * 20));
    assert_eq!(snap.get("fabric", "packets", None), Some(128 * 20));
    assert_eq!(snap.get("nipt", "occupancy", Some(0)), Some(2), "two exported pages on node 0");
    assert!(snap.get("tlb", "hits", Some(0)).unwrap() > 0, "sender TLB saw the stream");
    assert!(snap.get("link", "wire_bytes", Some(1)).unwrap() >= 20 * 1024, "link 0→1 moved data");
    assert_eq!(snap.get("link", "wire_bytes", Some(0)), Some(0), "node 0 receives nothing");
}

#[test]
fn snapshot_delta_isolates_an_interval() {
    let (mut mc, plans) = paired_stream(8, 10, 512);
    mc.run(&plans, 2).unwrap();
    let base = mc.metrics_snapshot();
    let (mut mc2, plans2) = paired_stream(8, 10, 512);
    mc2.run(&plans2, 2).unwrap();
    // Same machine, second burst: the delta holds exactly that burst.
    assert_eq!(base.get("delivery", "delivered", None), Some(40));
    let delta = mc2.snapshot_delta(&base);
    assert_eq!(delta.get("delivery", "delivered", None), Some(0), "identical runs delta to zero");
    assert_eq!(delta.get("fabric", "packets", None), Some(0));
}

/// The four committed golden digests (BENCH_throughput.json /
/// CHANGES.md) must come out of metered runs too: harvesting a snapshot
/// and enabling the per-epoch sampler are pure observation.
#[test]
fn golden_digests_unchanged_with_metrics_harvested() {
    let cases: [(u16, u64, u32, usize, u64); 4] = [
        (2, 4096, 10_000, 0, 0x21b8_ad2f_c3af_7f1f),
        (2, 256, 20_000, 0, 0x33c1_8800_a521_b6e7),
        (8, 4096, 2_500, 0, 0x3b45_aa5d_6bf1_0cfd),
        (16, 4096, 1_250, 4, 0x0600_489c_f640_8495),
    ];
    for (nodes, bytes, msgs, threads, golden) in cases {
        let (r, metrics) = host_perf::stream_pairs_metered(nodes, bytes, msgs, threads);
        assert_eq!(
            r.digest, golden,
            "{}: metered digest {:016x} != committed golden {golden:016x}",
            r.name, r.digest
        );
        assert!(metrics.starts_with("# shrimp-metrics v1"), "{}", r.name);
    }
}

#[test]
fn drop_counters_conserve_undelivered_packets() {
    // Lossless run: every injected packet is delivered, both drop
    // counters stay zero, and the conservation identity
    //   injected - delivered == fabric_drops + delivery_drops
    // holds with zero undelivered. (The lossy legs live next to the
    // counters: `shrimp-net` pins a corrupted-destination admit
    // incrementing `fabric/drops`, and `DeliveryCore` counts its own
    // rejects in `delivery/drops` — the two are distinct metrics.)
    let (mut mc, plans) = paired_stream(16, 25, 2048);
    mc.run(&plans, 2).unwrap();
    let snap = mc.metrics_snapshot();
    let injected = snap.get("fabric", "packets", None).unwrap();
    let delivered = snap.get("delivery", "delivered", None).unwrap();
    let fabric_drops = snap.get("fabric", "drops", None).unwrap();
    let delivery_drops = snap.get("delivery", "drops", None).unwrap();
    assert_eq!(injected, 8 * 25);
    assert_eq!(
        injected - delivered,
        fabric_drops + delivery_drops,
        "undelivered packets must be accounted to exactly one drop counter"
    );
    assert_eq!(fabric_drops, 0, "well-formed run never drops in the fabric");
    assert_eq!(delivery_drops, 0, "well-formed run never drops at delivery");
}

#[test]
fn engine_metrics_expose_wheel_and_phase_figures() {
    let (mut mc, plans) = paired_stream(8, 30, 1024);
    mc.set_phase_clock(Some(host_perf::host_nanos));
    mc.run(&plans, 2).unwrap();
    let em = mc.engine_metrics();
    assert!(em.get("engine", "epochs", None).unwrap() > 0);
    assert!(em.get("wheel", "depth_high", None).unwrap() > 0, "staging wheel saw entries");
    let execute = em.get_hist("phase", "execute_ns", None).unwrap();
    assert!(execute.count() > 0, "phase clock recorded execute samples");
    assert!(execute.sum() > 0, "execute phase accumulated host time");
    // Buffer pools saw traffic on every sender.
    assert!(em.get_high_water("buf_pool", "in_use", Some(0)).unwrap() > 0);
}

#[test]
fn epoch_sampler_records_a_bounded_timeseries() {
    let (mut mc, plans) = paired_stream(8, 40, 512);
    mc.set_epoch_sampling(Some(16));
    mc.run(&plans, 2).unwrap();
    let rings = mc.epoch_samples();
    assert_eq!(rings.len(), 2, "one ring per shard");
    for ring in rings {
        assert!(!ring.is_empty(), "sampler recorded epochs");
        assert!(ring.len() <= 16, "ring respects its capacity");
    }
    // Sampling is pure observation: digest equals an unsampled run.
    let (mut plain, plans2) = paired_stream(8, 40, 512);
    plain.run(&plans2, 2).unwrap();
    let (mut sampled, plans3) = paired_stream(8, 40, 512);
    sampled.set_epoch_sampling(Some(16));
    sampled.run(&plans3, 2).unwrap();
    assert_eq!(plain.state_digest(), sampled.state_digest());
}
