//! Multicomputer integration: deliberate update across the fabric, the
//! message-passing layer, scaling, and end-to-end timing sanity.

use shrimp::{Channel, Multicomputer, MulticomputerConfig};
use shrimp_mem::{VirtAddr, PAGE_SIZE};
use shrimp_os::Pid;
use shrimp_sim::SplitMix64;

fn pair() -> (Multicomputer, Pid, Pid, u64) {
    let mut mc = Multicomputer::new(2, MulticomputerConfig::default());
    let s = mc.spawn_process(0);
    let r = mc.spawn_process(1);
    mc.map_user_buffer(0, s, 0x10_0000, 4).unwrap();
    mc.map_user_buffer(1, r, 0x40_0000, 4).unwrap();
    let dev = mc.export(1, r, VirtAddr::new(0x40_0000), 4, 0, s).unwrap();
    (mc, s, r, dev)
}

#[test]
fn randomized_scatter_writes_land_byte_exactly() {
    let (mut mc, s, r, dev) = pair();
    let mut rng = SplitMix64::new(7);
    let mut shadow = vec![0u8; (4 * PAGE_SIZE) as usize];
    for i in 0..40u64 {
        let len = 4 * (1 + rng.next_below(64)); // 4..256 bytes, 4-aligned
        let off = 4 * rng.next_below((4 * PAGE_SIZE - len) / 4);
        let fill = (i + 1) as u8;
        let data = vec![fill; len as usize];
        mc.write_user(0, s, VirtAddr::new(0x10_0000), &data).unwrap();
        mc.send(0, s, VirtAddr::new(0x10_0000), dev + off / PAGE_SIZE, off % PAGE_SIZE, len)
            .unwrap();
        shadow[off as usize..(off + len) as usize].fill(fill);
    }
    let got = mc.read_user(1, r, VirtAddr::new(0x40_0000), 4 * PAGE_SIZE).unwrap();
    assert_eq!(got, shadow);
    assert_eq!(mc.dropped_packets(), 0);
}

#[test]
fn receiver_observes_sender_ordering() {
    // Point-to-point ordering: increasing counters written to the same
    // word must arrive monotonically; final value is the last write.
    let (mut mc, s, r, dev) = pair();
    for v in 1..=20u64 {
        mc.write_user(0, s, VirtAddr::new(0x10_0000), &v.to_le_bytes()).unwrap();
        mc.send(0, s, VirtAddr::new(0x10_0000), dev, 0, 8).unwrap();
    }
    let got = mc.read_user(1, r, VirtAddr::new(0x40_0000), 8).unwrap();
    assert_eq!(u64::from_le_bytes(got.try_into().unwrap()), 20);
}

#[test]
fn eight_node_ring_of_channels() {
    const N: usize = 8;
    let mut mc = Multicomputer::new(N as u16, MulticomputerConfig::default());
    let pids: Vec<_> = (0..N).map(|i| mc.spawn_process(i)).collect();
    let mut channels = Vec::new();
    for i in 0..N {
        let j = (i + 1) % N;
        channels.push(
            Channel::establish(
                &mut mc,
                i,
                pids[i],
                j,
                pids[j],
                VirtAddr::new(0x40_0000),
                VirtAddr::new(0x10_0000),
                1,
            )
            .unwrap(),
        );
    }
    // Every node sends its id to its neighbour; everyone receives.
    for (i, ch) in channels.iter_mut().enumerate() {
        ch.send(&mut mc, &[i as u8; 16]).unwrap();
    }
    for (i, ch) in channels.iter_mut().enumerate() {
        let msg = ch.try_recv(&mut mc).unwrap().expect("delivered");
        assert_eq!(msg.data, [i as u8; 16]);
    }
}

#[test]
fn fabric_congestion_serializes_fan_in() {
    // Many senders to one receiver must take longer (per delivered byte)
    // than a single sender: the receiver's inbound link serializes.
    let mut mc = Multicomputer::new(5, MulticomputerConfig::default());
    let recv = mc.spawn_process(4);
    mc.map_user_buffer(4, recv, 0x40_0000, 4).unwrap();
    let mut senders = Vec::new();
    for i in 0..4usize {
        let pid = mc.spawn_process(i);
        mc.map_user_buffer(i, pid, 0x10_0000, 1).unwrap();
        let dev =
            mc.export(4, recv, VirtAddr::new(0x40_0000 + i as u64 * PAGE_SIZE), 1, i, pid).unwrap();
        mc.write_user(i, pid, VirtAddr::new(0x10_0000), &vec![i as u8 + 1; PAGE_SIZE as usize])
            .unwrap();
        senders.push((pid, dev));
    }
    for (i, &(pid, dev)) in senders.iter().enumerate() {
        mc.send(i, pid, VirtAddr::new(0x10_0000), dev, 0, PAGE_SIZE).unwrap();
    }
    mc.run_until_quiet();
    // All four pages landed.
    for i in 0..4u64 {
        let got = mc.read_user(4, recv, VirtAddr::new(0x40_0000 + i * PAGE_SIZE), 16).unwrap();
        assert_eq!(got, vec![i as u8 + 1; 16]);
    }
    // The last delivery is later than one isolated page delivery would be.
    assert!(mc.last_delivery(4).as_nanos() > 0);
    assert_eq!(mc.fabric().stats().get("packets"), 4);
}

#[test]
fn end_to_end_latency_has_all_components() {
    let (mut mc, s, _r, dev) = pair();
    mc.write_user(0, s, VirtAddr::new(0x10_0000), &[1u8; 256]).unwrap();
    mc.send(0, s, VirtAddr::new(0x10_0000), dev, 0, 256).unwrap(); // warm
    let send_done = mc.node(0).os().machine().now();
    mc.send(0, s, VirtAddr::new(0x10_0000), dev, 0, 256).unwrap();
    let delivery = mc.last_delivery(1);
    // Delivery strictly lags the sender-side completion (routing + wire +
    // receiver EISA time)...
    assert!(delivery > send_done);
    // ...but by less than a millisecond (it's 256 bytes).
    assert!((delivery - send_done).as_micros_f64() < 1000.0);
}

#[test]
fn bandwidth_grows_with_message_size() {
    let bw = |bytes: u64| {
        let (mut mc, s, _r, dev) = pair();
        mc.write_user(0, s, VirtAddr::new(0x10_0000), &vec![1u8; bytes as usize]).unwrap();
        mc.send(0, s, VirtAddr::new(0x10_0000), dev, 0, bytes).unwrap(); // warm
        let t0 = mc.node(0).os().machine().now();
        for _ in 0..4 {
            mc.send(0, s, VirtAddr::new(0x10_0000), dev, 0, bytes).unwrap();
        }
        let dt = mc.node(0).os().machine().now() - t0;
        (4 * bytes) as f64 / dt.as_micros_f64()
    };
    let small = bw(128);
    let mid = bw(1024);
    let large = bw(4096);
    assert!(small < mid && mid < large, "{small:.1} < {mid:.1} < {large:.1} MB/s");
}

#[test]
fn channels_interleave_without_cross_talk() {
    let mut mc = Multicomputer::new(2, MulticomputerConfig::default());
    let s = mc.spawn_process(0);
    let r = mc.spawn_process(1);
    let mut a = Channel::establish(
        &mut mc,
        0,
        s,
        1,
        r,
        VirtAddr::new(0x40_0000),
        VirtAddr::new(0x10_0000),
        1,
    )
    .unwrap();
    let mut b = Channel::establish(
        &mut mc,
        0,
        s,
        1,
        r,
        VirtAddr::new(0x50_0000),
        VirtAddr::new(0x20_0000),
        1,
    )
    .unwrap();
    a.send(&mut mc, b"channel A #1").unwrap();
    b.send(&mut mc, b"channel B #1").unwrap();
    a.send(&mut mc, b"channel A #2").unwrap();
    assert_eq!(b.try_recv(&mut mc).unwrap().unwrap().data, b"channel B #1");
    // Channel A coalesces to the latest (single-buffer channel semantics):
    // the header word carries seq 2.
    let msg = a.try_recv(&mut mc).unwrap().unwrap();
    assert_eq!(msg.seq, 2);
    assert_eq!(msg.data, b"channel A #2");
}

#[test]
fn deliberate_update_needs_no_receiver_cpu() {
    let (mut mc, s, r, dev) = pair();
    mc.write_user(0, s, VirtAddr::new(0x10_0000), &[7u8; 64]).unwrap();
    let receiver_stats_before = mc.node(1).os().stats().get("page_faults");
    let receiver_refs_before = mc.node(1).os().machine().stats().get("mem_loads");
    mc.send(0, s, VirtAddr::new(0x10_0000), dev, 0, 64).unwrap();
    // Data is in the receiver's physical memory...
    assert_eq!(mc.read_user(1, r, VirtAddr::new(0x40_0000), 8).unwrap(), [7u8; 8]);
    // ...but delivery itself consumed no receiver CPU references or
    // faults (only the read_user just now did).
    assert_eq!(mc.node(1).os().stats().get("page_faults"), receiver_stats_before);
    assert!(mc.node(1).os().machine().stats().get("mem_loads") >= receiver_refs_before);
}
