//! The transfer-level flight recorder: a traced UDMA transfer must yield
//! one five-stage span whose stage boundaries never run backwards, the
//! Perfetto export must parse and carry every stage, and tracing must be
//! pure observation (nothing recorded — and nothing exported — when off).
//!
//! The exporter emits hand-built JSON, so the checks here parse it with a
//! deliberately independent hand-rolled scanner (no JSON dependency).

use std::collections::BTreeMap;

use shrimp::{Multicomputer, MulticomputerConfig};
use shrimp_mem::VirtAddr;
use shrimp_os::Pid;
use shrimp_sim::{Stage, STAGE_COUNT};

const SEND_VA: u64 = 0x10000;
const RECV_VA: u64 = 0x40000;

/// A 2-node machine with a deliberate-update mapping from node 0 to
/// node 1, ready to send out of `SEND_VA` into `RECV_VA`.
fn two_nodes() -> (Multicomputer, Pid, Pid, u64) {
    let mut mc = Multicomputer::new(2, MulticomputerConfig::default());
    let s = mc.spawn_process(0);
    let r = mc.spawn_process(1);
    mc.map_user_buffer(0, s, SEND_VA, 4).unwrap();
    mc.map_user_buffer(1, r, RECV_VA, 4).unwrap();
    let dev_page = mc.export(1, r, VirtAddr::new(RECV_VA), 4, 0, s).unwrap();
    (mc, s, r, dev_page)
}

/// Extracts the string value of `"key":"..."` from one JSON object line.
fn str_field<'a>(obj: &'a str, key: &str) -> Option<&'a str> {
    let pat = format!("\"{key}\":\"");
    let start = obj.find(&pat)? + pat.len();
    let end = obj[start..].find('"')? + start;
    Some(&obj[start..end])
}

/// Extracts the numeric value of `"key":<n>` from one JSON object line.
fn num_field(obj: &str, key: &str) -> Option<f64> {
    let pat = format!("\"{key}\":");
    let start = obj.find(&pat)? + pat.len();
    let rest = &obj[start..];
    let end = rest.find([',', '}']).unwrap_or(rest.len());
    rest[..end].trim().parse().ok()
}

/// Splits the exporter's `traceEvents` array into per-event object lines
/// (the exporter writes one object per line; this asserts the envelope on
/// the way: a `traceEvents` array must exist and must close).
fn trace_events(json: &str) -> Vec<&str> {
    let start = json.find("\"traceEvents\": [").expect("traceEvents array");
    let end = json.find("\n  ],").expect("traceEvents closes");
    json[start..end].split("\n    ").filter(|l| l.starts_with('{')).collect()
}

#[test]
fn four_kb_transfer_records_one_monotonic_five_stage_span() {
    let (mut mc, s, r, dev_page) = two_nodes();
    mc.set_tracing(true);
    assert!(mc.tracing());
    let data: Vec<u8> = (0..4096u64).map(|i| i as u8).collect();
    mc.write_user(0, s, VirtAddr::new(SEND_VA), &data).unwrap();
    mc.send(0, s, VirtAddr::new(SEND_VA), dev_page, 0, 4096).unwrap();
    assert_eq!(mc.read_user(1, r, VirtAddr::new(RECV_VA), 4096).unwrap(), data);

    assert_eq!(mc.recorder().len(), 1, "one packet, one span");
    let span = *mc.recorder().iter().next().unwrap();
    assert_eq!(span.src, 0);
    assert_eq!(span.dst, 1);
    assert_eq!(span.bytes, 4096);
    assert_eq!(span.id.node(), 0, "the sending NIC mints the id");
    assert!(span.is_monotonic(), "stage boundaries ran backwards: {span:?}");
    // Every stage is individually well-ordered and they chain end-to-start.
    let mut prev_end = None;
    for stage in Stage::ALL {
        let (start, end) = span.stage_bounds(stage);
        assert!(start <= end, "{stage} runs backwards");
        if let Some(p) = prev_end {
            assert_eq!(start, p, "{stage} does not start where the previous stage ended");
        }
        prev_end = Some(end);
    }
}

#[test]
fn export_trace_parses_with_all_stages_in_order() {
    let (mut mc, s, _r, dev_page) = two_nodes();
    mc.set_tracing(true);
    mc.write_user(0, s, VirtAddr::new(SEND_VA), &[0xA5u8; 4096]).unwrap();
    for _ in 0..3 {
        mc.send(0, s, VirtAddr::new(SEND_VA), dev_page, 0, 4096).unwrap();
    }
    let json = mc.export_trace();

    // Group the "ph":"X" events by transfer id, in emission order.
    let mut by_xfer: BTreeMap<String, Vec<(String, f64, f64)>> = BTreeMap::new();
    let mut metadata = 0;
    for event in trace_events(&json) {
        if str_field(event, "ph") == Some("M") {
            metadata += 1;
            continue;
        }
        assert_eq!(str_field(event, "ph"), Some("X"), "unknown event phase: {event}");
        assert_eq!(str_field(event, "cat"), Some("udma"));
        let name = str_field(event, "name").expect("stage name").to_string();
        let ts = num_field(event, "ts").expect("ts");
        let dur = num_field(event, "dur").expect("dur");
        assert_eq!(num_field(event, "bytes"), Some(4096.0));
        let xfer = str_field(event, "xfer").expect("correlation id").to_string();
        by_xfer.entry(xfer).or_default().push((name, ts, dur));
    }
    assert_eq!(metadata, 2, "one process_name record per node");
    assert_eq!(by_xfer.len(), 3, "three transfers, three correlation ids");

    let expected: Vec<&str> = Stage::ALL.iter().map(|s| s.name()).collect();
    for (xfer, stages) in &by_xfer {
        let names: Vec<&str> = stages.iter().map(|(n, _, _)| n.as_str()).collect();
        assert_eq!(names, expected, "{xfer}: every span carries all {STAGE_COUNT} stages");
        for window in stages.windows(2) {
            let (ref a, a_ts, a_dur) = window[0];
            let (ref b, b_ts, _) = window[1];
            assert!(a_dur >= 0.0, "{xfer}/{a}: negative duration");
            assert!(b_ts >= a_ts, "{xfer}: {b} starts before {a}");
            // Stages tile the transfer: each starts where the last ended
            // (µs at ns resolution, so exact up to formatting).
            assert!((a_ts + a_dur - b_ts).abs() < 0.002, "{xfer}: gap between {a} and {b}");
        }
    }

    // The stats trailer agrees with the recorder.
    assert_eq!(num_field(&json, "spans"), Some(3.0));
    assert_eq!(num_field(&json, "dropped"), Some(0.0));
    for stage in Stage::ALL {
        let section = json.find(&format!("\"{}\":{{", stage.name())).expect("stage summary");
        assert_eq!(num_field(&json[section..], "count"), Some(3.0), "{stage} count");
    }
}

#[test]
fn tracing_off_records_and_exports_nothing() {
    let (mut mc, s, _r, dev_page) = two_nodes();
    mc.write_user(0, s, VirtAddr::new(SEND_VA), &[1u8; 4096]).unwrap();
    mc.send(0, s, VirtAddr::new(SEND_VA), dev_page, 0, 4096).unwrap();
    assert!(!mc.tracing());
    assert!(mc.recorder().is_empty());
    assert_eq!(mc.recorder().total_recorded(), 0);
    let json = mc.export_trace();
    let spans = trace_events(&json).into_iter().filter(|e| str_field(e, "ph") == Some("X")).count();
    assert_eq!(spans, 0, "nothing traced, nothing exported");
    assert_eq!(num_field(&json, "spans"), Some(0.0));
}

#[test]
fn machine_event_rings_capture_the_initiation_sequence() {
    let (mut mc, s, _r, dev_page) = two_nodes();
    mc.set_tracing(true);
    mc.write_user(0, s, VirtAddr::new(SEND_VA), &[2u8; 256]).unwrap();
    mc.send(0, s, VirtAddr::new(SEND_VA), dev_page, 0, 256).unwrap();
    // The sender's typed event ring saw the STORE/LOAD pair and the
    // message completion; the rendered debug view preserves the text form.
    let rendered = mc.node(0).os().machine().trace();
    let text: Vec<String> = rendered.recent(16).map(|e| e.to_string()).collect();
    assert!(text.iter().any(|l| l.contains("STORE")), "no proxy STORE in {text:?}");
    assert!(text.iter().any(|l| l.contains("LOAD")), "no status LOAD in {text:?}");
    assert!(text.iter().any(|l| l.contains("message done")), "no completion in {text:?}");
}
