//! Device-class integration: UDMA against the disk and frame buffer models
//! (§1: the mechanism "can be used with a wide variety of I/O devices").

use shrimp_devices::{Disk, DiskGeometry, FrameBuffer};
use shrimp_machine::MachineConfig;
use shrimp_mem::{VirtAddr, PAGE_SIZE};
use shrimp_os::{DmaStrategy, Node, NodeConfig, Trap};

fn disk_node(blocks: u64) -> Node<Disk> {
    let config = NodeConfig {
        machine: MachineConfig { mem_bytes: 256 * PAGE_SIZE, ..MachineConfig::default() },
        user_frames: None,
    };
    Node::new(config, Disk::new("disk0", DiskGeometry { blocks, ..DiskGeometry::default() }))
}

#[test]
fn disk_write_read_cycle_via_udma() {
    let mut n = disk_node(32);
    let pid = n.spawn();
    n.mmap(pid, 0x10_0000, 2, true).unwrap();
    n.grant_device_proxy(pid, 0, 32, true).unwrap();
    let record: Vec<u8> = (0..PAGE_SIZE).map(|i| (i % 253) as u8).collect();
    n.write_user(pid, VirtAddr::new(0x10_0000), &record).unwrap();

    n.udma_send(pid, VirtAddr::new(0x10_0000), 9, 0, PAGE_SIZE).unwrap();
    assert_eq!(n.machine().device().block(9), &record[..]);

    n.udma_recv(pid, VirtAddr::new(0x10_1000), 9, 0, PAGE_SIZE).unwrap();
    assert_eq!(n.read_user(pid, VirtAddr::new(0x10_1000), PAGE_SIZE).unwrap(), record);
}

#[test]
fn disk_seek_model_shows_in_elapsed_time() {
    let mut n = disk_node(1024);
    let pid = n.spawn();
    n.mmap(pid, 0x10_0000, 1, true).unwrap();
    n.grant_device_proxy(pid, 0, 1024, true).unwrap();
    n.write_user(pid, VirtAddr::new(0x10_0000), &[1u8; 512]).unwrap();
    // First write moves the head to block 800; the repeat hits the same
    // track (no seek).
    let far = n.udma_send(pid, VirtAddr::new(0x10_0000), 800, 0, 512).unwrap();
    let near = n.udma_send(pid, VirtAddr::new(0x10_0000), 800, 512, 512).unwrap();
    let seek = n.machine().device().geometry().seek;
    assert!(far.elapsed >= near.elapsed, "far {} must not beat near {}", far.elapsed, near.elapsed);
    assert!(
        (far.elapsed - near.elapsed).as_nanos() >= seek.as_nanos() / 2,
        "seek must dominate the difference"
    );
}

#[test]
fn disk_misaligned_udma_is_rejected_as_device_error() {
    let mut n = disk_node(8);
    let pid = n.spawn();
    n.mmap(pid, 0x10_0000, 1, true).unwrap();
    n.grant_device_proxy(pid, 0, 8, true).unwrap();
    n.write_user(pid, VirtAddr::new(0x10_0000), &[1u8; 64]).unwrap();
    // Offset 2 violates the disk's 4-byte alignment rule (§5's example).
    let err = n.udma_send(pid, VirtAddr::new(0x10_0000), 0, 2, 8).unwrap_err();
    assert!(matches!(err, Trap::DeviceError { .. }));
    // An aligned transfer afterwards succeeds (hardware back to Idle).
    n.udma_send(pid, VirtAddr::new(0x10_0000), 0, 4, 8).unwrap();
}

#[test]
fn disk_via_traditional_syscall_matches_udma_content() {
    let mut n = disk_node(16);
    let pid = n.spawn();
    n.mmap(pid, 0x10_0000, 1, true).unwrap();
    n.grant_device_proxy(pid, 0, 16, true).unwrap();
    let data = vec![0x7eu8; 2048];
    n.write_user(pid, VirtAddr::new(0x10_0000), &data).unwrap();
    n.udma_send(pid, VirtAddr::new(0x10_0000), 3, 0, 2048).unwrap();
    n.sys_dma_to_device(pid, VirtAddr::new(0x10_0000), 5 * PAGE_SIZE, 2048, DmaStrategy::PinPages)
        .unwrap();
    assert_eq!(n.machine().device().block(3)[..2048], n.machine().device().block(5)[..2048]);
}

#[test]
fn framebuffer_blit_and_readback() {
    let config = NodeConfig {
        machine: MachineConfig { mem_bytes: 256 * PAGE_SIZE, ..MachineConfig::default() },
        user_frames: None,
    };
    let mut n = Node::new(config, FrameBuffer::new("fb", 128, 64));
    let pid = n.spawn();
    let fb_bytes = 128 * 64u64;
    let pages = fb_bytes.div_ceil(PAGE_SIZE);
    n.mmap(pid, 0x10_0000, pages + 1, true).unwrap();
    n.grant_device_proxy(pid, 0, pages, true).unwrap();

    let frame: Vec<u8> = (0..fb_bytes).map(|i| (i % 251) as u8).collect();
    n.write_user(pid, VirtAddr::new(0x10_0000), &frame).unwrap();
    let r = n.udma_send(pid, VirtAddr::new(0x10_0000), 0, 0, fb_bytes).unwrap();
    assert_eq!(r.transfers, pages, "one transfer per device page");
    assert_eq!(n.machine().device().pixel(0, 0), 0);
    assert_eq!(n.machine().device().pixel(127, 63), ((fb_bytes - 1) % 251) as u8);

    // Read a rectangle row back.
    n.udma_recv(pid, VirtAddr::new(0x10_0000 + pages * PAGE_SIZE), 0, 128 * 3, 128).unwrap();
    let row = n.read_user(pid, VirtAddr::new(0x10_0000 + pages * PAGE_SIZE), 128).unwrap();
    assert_eq!(row, &frame[(128 * 3) as usize..(128 * 4) as usize]);
}

#[test]
fn framebuffer_out_of_bounds_blit_rejected() {
    let config = NodeConfig {
        machine: MachineConfig { mem_bytes: 64 * PAGE_SIZE, ..MachineConfig::default() },
        user_frames: None,
    };
    let mut n = Node::new(config, FrameBuffer::new("fb", 64, 32)); // 2048 px
    let pid = n.spawn();
    n.mmap(pid, 0x10_0000, 1, true).unwrap();
    // One device proxy page covers 4096 addresses but only 2048 pixels
    // exist: a transfer past the end must fail device validation.
    n.grant_device_proxy(pid, 0, 1, true).unwrap();
    n.write_user(pid, VirtAddr::new(0x10_0000), &[1u8; 256]).unwrap();
    let err = n.udma_send(pid, VirtAddr::new(0x10_0000), 0, 2048 - 64, 256).unwrap_err();
    assert!(matches!(err, Trap::DeviceError { .. }));
}
