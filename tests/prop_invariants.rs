//! Property-based tests: the paper's four OS invariants under arbitrary
//! operation sequences, plus algebraic properties of the core data types.

use proptest::prelude::*;

use shrimp_devices::StreamSink;
use shrimp_machine::{MachineConfig, UdmaMode};
use shrimp_mem::{Layout, PhysAddr, VirtAddr, PAGE_SIZE, PROXY_OFFSET};
use shrimp_os::{Node, NodeConfig};
use udma_core::state::{transition, Effect, UdmaEvent, UdmaState};
use udma_core::UdmaStatus;

// ---------------------------------------------------------------------
// Proxy-space algebra.
// ---------------------------------------------------------------------

proptest! {
    #[test]
    fn proxy_roundtrip_phys(addr in 0u64..(64 * 1024 * 1024)) {
        let layout = Layout::new(64 * 1024 * 1024, 1024 * PAGE_SIZE);
        let pa = PhysAddr::new(addr);
        let proxy = layout.proxy_of_phys(pa).unwrap();
        prop_assert_eq!(layout.phys_of_proxy(proxy).unwrap(), pa);
        // PROXY preserves page offsets (the hardware relies on this).
        prop_assert_eq!(proxy.page_offset(), pa.page_offset());
    }

    #[test]
    fn proxy_roundtrip_virt(addr in 0u64..PROXY_OFFSET) {
        let layout = Layout::new(8 * 1024 * 1024, 1024 * PAGE_SIZE);
        let va = VirtAddr::new(addr);
        let proxy = layout.proxy_of_virt(va).unwrap();
        prop_assert_eq!(layout.virt_of_proxy(proxy).unwrap(), va);
    }

    #[test]
    fn proxy_regions_never_overlap(addr in any::<u64>()) {
        let layout = Layout::new(64 * 1024 * 1024, 1024 * PAGE_SIZE);
        // Any address classifies into exactly one region (total function;
        // no panics), and proxy translation only succeeds in the right one.
        let region = layout.region_of_phys(PhysAddr::new(addr));
        let as_real = layout.proxy_of_phys(PhysAddr::new(addr)).is_ok();
        let as_proxy = layout.phys_of_proxy(PhysAddr::new(addr)).is_ok();
        prop_assert!(!(as_real && as_proxy), "{addr:#x} in two regions ({region:?})");
    }
}

// ---------------------------------------------------------------------
// Status word.
// ---------------------------------------------------------------------

fn arb_status() -> impl Strategy<Value = UdmaStatus> {
    (
        any::<bool>(),
        any::<bool>(),
        any::<bool>(),
        any::<bool>(),
        any::<bool>(),
        0u16..0x800,
        0u64..(1 << 48),
    )
        .prop_map(
            |(
                initiation,
                transferring,
                invalid,
                matches,
                wrong_space,
                device_error,
                remaining_bytes,
            )| {
                UdmaStatus {
                    initiation,
                    transferring,
                    invalid,
                    matches,
                    wrong_space,
                    device_error,
                    remaining_bytes,
                }
            },
        )
}

proptest! {
    #[test]
    fn status_pack_unpack_roundtrip(status in arb_status()) {
        prop_assert_eq!(UdmaStatus::unpack(status.pack()), status);
    }

    #[test]
    fn status_retry_and_error_are_disjoint(status in arb_status()) {
        prop_assert!(!(status.should_retry() && status.is_error()));
        // A started transfer is neither a retry case nor an error.
        if status.started() {
            prop_assert!(!status.should_retry());
            prop_assert!(!status.is_error());
        }
    }
}

// ---------------------------------------------------------------------
// State machine.
// ---------------------------------------------------------------------

fn arb_event() -> impl Strategy<Value = UdmaEvent> {
    prop_oneof![
        Just(UdmaEvent::Store),
        Just(UdmaEvent::Inval),
        Just(UdmaEvent::Load),
        Just(UdmaEvent::BadLoad),
        Just(UdmaEvent::TransferDone),
    ]
}

proptest! {
    /// Figure 5 invariants over arbitrary event streams:
    /// - a transfer only ever starts from DestLoaded via Load,
    /// - Transferring is only left via TransferDone,
    /// - the latch is only populated by Store.
    #[test]
    fn state_machine_stream_invariants(events in proptest::collection::vec(arb_event(), 0..64)) {
        let mut state = UdmaState::Idle;
        for ev in events {
            let (next, effect) = transition(state, ev);
            if effect == Effect::StartTransfer {
                prop_assert_eq!(state, UdmaState::DestLoaded);
                prop_assert_eq!(ev, UdmaEvent::Load);
                prop_assert_eq!(next, UdmaState::Transferring);
            }
            if state == UdmaState::Transferring && next != UdmaState::Transferring {
                prop_assert_eq!(ev, UdmaEvent::TransferDone);
            }
            if effect == Effect::LatchDest {
                prop_assert_eq!(ev, UdmaEvent::Store);
                prop_assert_eq!(next, UdmaState::DestLoaded);
            }
            state = next;
        }
    }

    /// From any state, Inval followed by the two-instruction sequence
    /// reaches Transferring unless a transfer is already running — the
    /// user-level retry protocol's termination argument.
    #[test]
    fn retry_always_reaches_transferring(start in prop_oneof![
        Just(UdmaState::Idle),
        Just(UdmaState::DestLoaded),
        Just(UdmaState::Transferring),
    ]) {
        let (s, _) = transition(start, UdmaEvent::Inval);
        let (s, _) = transition(s, UdmaEvent::Store);
        let (s, _) = transition(s, UdmaEvent::Load);
        if start == UdmaState::Transferring {
            // Busy device: unchanged, retry later.
            prop_assert_eq!(s, UdmaState::Transferring);
        } else {
            prop_assert_eq!(s, UdmaState::Transferring);
        }
    }
}

// ---------------------------------------------------------------------
// Kernel invariants I1–I4 under random operation sequences.
// ---------------------------------------------------------------------

// ---------------------------------------------------------------------
// Shadow-model oracle: under arbitrary stores, reads, cleans and memory
// pressure, user memory must behave exactly like a flat byte array — the
// pager (evictions, swap round-trips, proxy unmapping) must be invisible
// to program semantics.
// ---------------------------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig { cases: 24, ..ProptestConfig::default() })]

    #[test]
    fn paging_is_transparent_to_program_semantics(
        ops in proptest::collection::vec(
            (0u64..10, 0u64..(PAGE_SIZE - 8), any::<i64>(), 0u8..4),
            1..100,
        ),
    ) {
        const PAGES: u64 = 10;
        let config = NodeConfig {
            machine: MachineConfig {
                mem_bytes: 256 * PAGE_SIZE,
                ..MachineConfig::default()
            },
            user_frames: Some(4), // heavy pressure: 4 frames for 10 pages
        };
        let mut node = Node::new(config, StreamSink::new("sink"));
        let pid = node.spawn();
        node.mmap(pid, 0x10_0000, PAGES, true).unwrap();
        let mut shadow = vec![0u8; (PAGES * PAGE_SIZE) as usize];

        for &(page, off, val, kind) in &ops {
            let off = off & !7; // 8-byte aligned word ops
            let va = VirtAddr::new(0x10_0000 + page * PAGE_SIZE + off);
            let idx = (page * PAGE_SIZE + off) as usize;
            match kind {
                0 | 1 => {
                    node.user_store(pid, va, val).unwrap();
                    shadow[idx..idx + 8].copy_from_slice(&(val as u64).to_le_bytes());
                }
                2 => {
                    let got = node.user_load(pid, va).unwrap();
                    let want =
                        u64::from_le_bytes(shadow[idx..idx + 8].try_into().unwrap());
                    prop_assert_eq!(got, want, "load at page {} off {}", page, off);
                }
                _ => {
                    let _ = node.clean_page(pid, va.page()).unwrap();
                }
            }
            node.check_invariants().map_err(TestCaseError::fail)?;
        }

        // Final sweep: every byte of every page matches the shadow.
        let all = node
            .read_user(pid, VirtAddr::new(0x10_0000), PAGES * PAGE_SIZE)
            .unwrap();
        prop_assert_eq!(all, shadow);
        // And the pressure was real.
        prop_assert!(node.stats().get("evictions") > 0 || ops.len() < 6);
    }
}

// ---------------------------------------------------------------------
// Differential testing: the §7 queueing extension must be observationally
// equivalent to the basic device for a single process's send stream —
// only timing may differ.
// ---------------------------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig { cases: 32, ..ProptestConfig::default() })]

    #[test]
    fn queued_and_basic_devices_deliver_identical_streams(
        sizes in proptest::collection::vec(1u64..1024, 1..16),
        offsets in proptest::collection::vec(0u64..960, 16),
    ) {
        let run = |mode: UdmaMode| {
            let config = NodeConfig {
                machine: MachineConfig {
                    mem_bytes: 256 * PAGE_SIZE,
                    udma: mode,
                    ..MachineConfig::default()
                },
                user_frames: None,
            };
            let mut n = Node::new(config, StreamSink::new("sink"));
            let pid = n.spawn();
            n.mmap(pid, 0x10_0000, 2, true).unwrap();
            n.grant_device_proxy(pid, 0, 2, true).unwrap();
            let fill: Vec<u8> = (0..2 * PAGE_SIZE).map(|i| (i % 241) as u8).collect();
            n.write_user(pid, VirtAddr::new(0x10_0000), &fill).unwrap();
            for (i, &raw) in sizes.iter().enumerate() {
                let size = (raw.max(1) + 3) & !3;
                let off = offsets[i] & !3;
                n.udma_send(pid, VirtAddr::new(0x10_0000 + off), 0, off, size).unwrap();
            }
            let drained = n.machine().udma_drained_at();
            n.machine_mut().advance_to(drained);
            n.machine_mut().poll();
            // The observable: the exact (address, bytes) write sequence.
            n.machine()
                .device()
                .writes()
                .iter()
                .map(|(a, d, _)| (*a, d.clone()))
                .collect::<Vec<_>>()
        };
        let basic = run(UdmaMode::Basic);
        let queued = run(UdmaMode::Queued(8));
        prop_assert_eq!(basic, queued);
    }
}

#[derive(Clone, Debug)]
enum Op {
    Store { page: u64, val: i64 },
    Load { page: u64 },
    ProxyLoad { page: u64 },
    ProxyStore { page: u64, nbytes: i64 },
    DevStore { dev_page: u64, nbytes: i64 },
    DevLoad { dev_page: u64 },
    Clean { page: u64 },
    Switch,
    Drain,
}

fn arb_op(pages: u64, dev_pages: u64) -> impl Strategy<Value = Op> {
    prop_oneof![
        (0..pages, any::<i64>()).prop_map(|(page, val)| Op::Store { page, val }),
        (0..pages).prop_map(|page| Op::Load { page }),
        (0..pages).prop_map(|page| Op::ProxyLoad { page }),
        (0..pages, 1i64..2048).prop_map(|(page, nbytes)| Op::ProxyStore { page, nbytes }),
        (0..dev_pages, -64i64..2048)
            .prop_map(|(dev_page, nbytes)| Op::DevStore { dev_page, nbytes }),
        (0..dev_pages).prop_map(|dev_page| Op::DevLoad { dev_page }),
        (0..pages).prop_map(|page| Op::Clean { page }),
        Just(Op::Switch),
        Just(Op::Drain),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 24, ..ProptestConfig::default() })]

    /// Two untrusting processes issue arbitrary references (memory, memory
    /// proxy, device proxy), cleans, and context switches on a
    /// memory-pressured node; I1–I4 must hold after every step and no
    /// operation may panic the kernel.
    #[test]
    fn kernel_invariants_hold_under_random_ops(
        ops in proptest::collection::vec(arb_op(6, 3), 1..80),
        seed in any::<u64>(),
    ) {
        let _ = seed;
        let config = NodeConfig {
            machine: MachineConfig {
                mem_bytes: 256 * PAGE_SIZE,
                udma: UdmaMode::Basic,
                ..MachineConfig::default()
            },
            user_frames: Some(5),
        };
        let mut node = Node::new(config, StreamSink::new("sink"));
        let layout = node.machine().layout();
        let pids = [node.spawn(), node.spawn()];
        for &pid in &pids {
            node.mmap(pid, 0x10_0000, 6, true).unwrap();
            node.grant_device_proxy(pid, 0, 3, true).unwrap();
        }

        for (i, op) in ops.iter().enumerate() {
            let pid = pids[i % 2];
            let va = |page: u64| VirtAddr::new(0x10_0000 + page * PAGE_SIZE);
            let result: Result<(), shrimp_os::Trap> = match *op {
                Op::Store { page, val } => node.user_store(pid, va(page), val).map(|_| ()),
                Op::Load { page } => node.user_load(pid, va(page)).map(|_| ()),
                Op::ProxyLoad { page } => node
                    .user_load(pid, layout.proxy_of_virt(va(page)).unwrap())
                    .map(|_| ()),
                Op::ProxyStore { page, nbytes } => node
                    .user_store(pid, layout.proxy_of_virt(va(page)).unwrap(), nbytes)
                    .map(|_| ()),
                Op::DevStore { dev_page, nbytes } => node
                    .user_store(
                        pid,
                        VirtAddr::new(shrimp_mem::DEV_PROXY_BASE + dev_page * PAGE_SIZE),
                        nbytes,
                    )
                    .map(|_| ()),
                Op::DevLoad { dev_page } => node
                    .user_load(
                        pid,
                        VirtAddr::new(shrimp_mem::DEV_PROXY_BASE + dev_page * PAGE_SIZE),
                    )
                    .map(|_| ()),
                Op::Clean { page } => node.clean_page(pid, va(page).page()).map(|_| ()),
                Op::Switch => {
                    node.context_switch(None);
                    Ok(())
                }
                Op::Drain => {
                    let t = node.machine().udma_drained_at();
                    node.machine_mut().advance_to(t);
                    Ok(())
                }
            };
            // Operations may trap (that is protection working); they must
            // never corrupt kernel state.
            let _ = result;
            if let Err(v) = node.check_invariants() {
                return Err(TestCaseError::fail(format!("op {i} ({op:?}): {v}")));
            }
        }
    }
}
