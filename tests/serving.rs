//! Serving-workload determinism and program/plan equivalence.
//!
//! The reactive program layer injects sends *mid-run* (replies keyed on
//! deliveries), so its determinism story needs its own pins alongside the
//! stream goldens: the multi-tenant serving workload's `state_digest`
//! and exported trace bytes must be bit-identical at t=1/2/4, and a
//! static program must be indistinguishable from the hand-unrolled
//! `NodePlan` it replaces — the legacy path is a special case, not a
//! parallel implementation.

use proptest::prelude::*;

use shrimp::{
    Multicomputer, NodePlan, PacketClass, ProgramPlan, RpcClientProgram, RpcServerProgram, SendOp,
    StreamProgram,
};
use shrimp_bench::serving::{serving_traced, SERVING_MSG_BYTES};
use shrimp_machine::MachineConfig;
use shrimp_mem::VirtAddr;

/// Pinned `state_digest` of the 64-node, 8-tenant, 2-request serving
/// workload (any thread count). Captured when the serving workload
/// landed; a change means the simulated serving timeline changed.
const SERVING_64N_8X2_DIGEST: u64 = 0xe747_6a20_8d54_7525;

#[test]
fn serving_digest_and_trace_are_thread_invariant() {
    let runs: Vec<_> = [1usize, 2, 4]
        .into_iter()
        .map(|threads| {
            let (out, trace) = serving_traced(64, 8, 2, threads);
            (threads, out, trace)
        })
        .collect();
    let (_, base, base_trace) = &runs[0];
    assert_eq!(
        base.result.digest, SERVING_64N_8X2_DIGEST,
        "serving digest departed from the pinned timeline"
    );
    assert!(base.nipt_evictions > 0, "tenant mix must pressure the NIPT");
    assert!(base.nipt_refaults > 0, "recycled slots must refault");
    for (threads, out, trace) in &runs[1..] {
        assert_eq!(out.result.digest, base.result.digest, "digest at t={threads}");
        assert_eq!(trace, base_trace, "trace bytes at t={threads}");
        assert_eq!(
            out.result.request_ns, base.result.request_ns,
            "request percentiles are simulated figures (t={threads})"
        );
        assert_eq!(out.nipt_evictions, base.nipt_evictions, "evictions at t={threads}");
        assert_eq!(out.nipt_refaults, base.nipt_refaults, "refaults at t={threads}");
    }
}

/// Two exported one-page windows per pair, both directions — the rig the
/// interleaving proptest sprays static sends over. Returns the machine
/// and, per sending node, `(pid, dev_page)` of its outbound window.
fn crossed_pairs() -> (Multicomputer, Vec<(shrimp_os::Pid, u64)>) {
    let mut mc = Multicomputer::with_machine_config(4, MachineConfig::default());
    let mut out = Vec::new();
    for pair in 0..2usize {
        let (a, b) = (2 * pair, 2 * pair + 1);
        let pa = mc.spawn_process(a);
        let pb = mc.spawn_process(b);
        for (node, pid) in [(a, pa), (b, pb)] {
            mc.map_user_buffer(node, pid, 0x10_0000, 2).unwrap();
            mc.map_user_buffer(node, pid, 0x40_0000, 2).unwrap();
            let fill: Vec<u8> =
                (0..2048u64).map(|i| ((i * 13 + node as u64) % 251) as u8).collect();
            mc.write_user(node, pid, VirtAddr::new(0x10_0000), &fill).unwrap();
        }
        let dev_ab = mc.export(b, pb, VirtAddr::new(0x40_0000), 2, a, pa).unwrap();
        let dev_ba = mc.export(a, pa, VirtAddr::new(0x40_0000), 2, b, pb).unwrap();
        out.push((pa, dev_ab));
        out.push((pb, dev_ba));
    }
    (mc, out)
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 24, ..ProptestConfig::default() })]

    /// Any interleaving of request-like and reply-like static sends —
    /// four senders crossing two pairs, mixed §7 priority classes,
    /// varying sizes — must produce the same machine whether expressed
    /// as hand-unrolled [`NodePlan`]s or as the trivial
    /// [`StreamProgram`]s that replaced them, at one shard and at two.
    #[test]
    fn static_programs_match_hand_unrolled_plans(
        ops_per_node in proptest::collection::vec((1usize..12, 0u64..4, 0u64..2), 4),
        threads in 1usize..3,
    ) {
        let sizes = [64u64, 256, 1024, 2048];
        let build_plans = |ends: &[(shrimp_os::Pid, u64)]| -> Vec<NodePlan> {
            ends.iter()
                .enumerate()
                .map(|(node, &(pid, dev_page))| NodePlan {
                    node,
                    ops: (0..ops_per_node[node].0)
                        .map(|k| SendOp {
                            pid,
                            src_va: VirtAddr::new(0x10_0000),
                            dev_page,
                            dev_off: 0,
                            nbytes: sizes[(ops_per_node[node].1 as usize + k) % sizes.len()],
                            class: if (k as u64 + ops_per_node[node].2).is_multiple_of(2) {
                                PacketClass::User
                            } else {
                                PacketClass::System
                            },
                        })
                        .collect(),
                })
                .collect()
        };

        let (mut as_plans, ends) = crossed_pairs();
        let plans = build_plans(&ends);
        as_plans.run(&plans, threads).unwrap();

        let (mut as_programs, ends) = crossed_pairs();
        let mut programs: Vec<ProgramPlan> = build_plans(&ends)
            .into_iter()
            .map(|plan| ProgramPlan {
                node: plan.node,
                program: Box::new(StreamProgram::new(plan.ops)),
            })
            .collect();
        as_programs.run_programs(&mut programs, threads).unwrap();

        prop_assert_eq!(
            as_plans.state_digest(),
            as_programs.state_digest(),
            "hand-unrolled plans and stream programs must be one timeline (t={})",
            threads
        );
    }
}

#[test]
fn rpc_reply_carries_the_server_payload() {
    let mut mc = Multicomputer::with_machine_config(2, MachineConfig::default());
    let client = mc.spawn_process(0);
    let server = mc.spawn_process(1);
    for (node, pid) in [(0usize, client), (1usize, server)] {
        mc.map_user_buffer(node, pid, 0x10_0000, 1).unwrap();
        mc.map_user_buffer(node, pid, 0x40_0000, 1).unwrap();
    }
    let request: Vec<u8> = (0..SERVING_MSG_BYTES).map(|i| (i % 127) as u8).collect();
    let reply: Vec<u8> = (0..SERVING_MSG_BYTES).map(|i| ((i * 7) % 239) as u8).collect();
    mc.write_user(0, client, VirtAddr::new(0x10_0000), &request).unwrap();
    mc.write_user(1, server, VirtAddr::new(0x10_0000), &reply).unwrap();

    let req_dev = mc.export(1, server, VirtAddr::new(0x40_0000), 1, 0, client).unwrap();
    let rep_dev = mc.export(0, client, VirtAddr::new(0x40_0000), 1, 1, server).unwrap();
    let req_paddr = mc.user_paddr(1, server, VirtAddr::new(0x40_0000)).unwrap();
    let rep_paddr = mc.user_paddr(0, client, VirtAddr::new(0x40_0000)).unwrap();

    let requests = 3usize;
    let mut programs = vec![
        ProgramPlan {
            node: 0,
            program: Box::new(RpcClientProgram::closed_loop(
                SendOp {
                    pid: client,
                    src_va: VirtAddr::new(0x10_0000),
                    dev_page: req_dev,
                    dev_off: 0,
                    nbytes: SERVING_MSG_BYTES,
                    class: PacketClass::User,
                },
                requests,
                rep_paddr,
                SERVING_MSG_BYTES,
            )),
        },
        ProgramPlan {
            node: 1,
            program: Box::new(RpcServerProgram::new(
                req_paddr,
                SERVING_MSG_BYTES,
                vec![(
                    req_paddr,
                    SendOp {
                        pid: server,
                        src_va: VirtAddr::new(0x10_0000),
                        dev_page: rep_dev,
                        dev_off: 0,
                        nbytes: SERVING_MSG_BYTES,
                        class: PacketClass::System,
                    },
                )],
                requests,
            )),
        },
    ];
    mc.run_programs(&mut programs, 2).unwrap();

    // The request bytes crossed to the server's window, the reply bytes
    // crossed back to the client's — user-level RPC moved real payloads.
    let got_req = mc.read_user(1, server, VirtAddr::new(0x40_0000), SERVING_MSG_BYTES).unwrap();
    assert_eq!(got_req, request, "server window must hold the request payload");
    let got_rep = mc.read_user(0, client, VirtAddr::new(0x40_0000), SERVING_MSG_BYTES).unwrap();
    assert_eq!(got_rep, reply, "client window must hold the reply payload");

    let rpc = programs[0]
        .program
        .as_any_mut()
        .downcast_mut::<RpcClientProgram>()
        .expect("client program comes back");
    assert_eq!(rpc.completed(), requests);
    assert_eq!(rpc.latency().count(), requests as u64);
    assert!(rpc.latency().quantile(0.99).unwrap() > 0);
}
