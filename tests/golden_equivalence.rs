//! Golden equivalence: the zero-copy data plane changed how the simulator
//! *executes* (pooled payload buffers, direct memory copies, flat counters)
//! but must not change what it *simulates*. These tests pin the simulated
//! timelines and receiver memory of two deterministic workloads to values
//! captured from the pre-optimization tree (commit 301acb1), and check
//! that pooled-buffer recycling never aliases two in-flight packets.

use proptest::prelude::*;

use shrimp::{Channel, Multicomputer};
use shrimp_machine::MachineConfig;
use shrimp_mem::{VirtAddr, PAGE_SIZE};
use shrimp_sim::SimTime;

// ---------------------------------------------------------------------
// Golden timelines (captured from the seed tree; see module docs).
// ---------------------------------------------------------------------

/// The 4-node ring exchange from `examples/message_passing.rs`: receive
/// instant of every hop, in nanoseconds, as simulated by the seed.
const RING_HOP_TIMES_NS: [u64; 11] = [
    232_027, 429_510, 626_493, 812_876, 852_493, 892_748, 932_503, 972_758, 1_012_530, 1_052_923,
    1_092_816,
];

/// Per-node clocks after the last send, as simulated by the seed.
const RING_FINAL_NODE_TIMES_NS: [u64; 4] = [1_133_209, 1_046_661, 1_087_054, 1_126_947];

/// Final clocks of the fig8-style 2-node 4 KB deliberate-update stream
/// (50 messages), as simulated by the seed: (sender, receiver).
const STREAM_FINAL_TIMES_NS: (u64, u64) = (7_552_383, 7_713_851);

/// Final clocks of the *pure* 50-message 4 KB stream (one fill, fifty
/// sends, one drain — the shape a [`shrimp::NodePlan`] expresses), as
/// simulated by the serial driver when the parallel engine landed:
/// (sender, receiver). Both the serial driver and `Multicomputer::run` at any
/// thread count must land exactly here.
const PLAN_STREAM_FINAL_TIMES_NS: (u64, u64) = (7_133_433, 7_286_351);

/// `Multicomputer::state_digest` of the machine at those final clocks.
const PLAN_STREAM_DIGEST: u64 = 0x133a_63a5_a448_4120;

#[test]
fn ring_exchange_matches_seed_timeline_and_token() {
    const NODES: usize = 4;
    let mut mc = Multicomputer::new(NODES as u16, Default::default());
    let pids: Vec<_> = (0..NODES).map(|i| mc.spawn_process(i)).collect();
    let mut channels: Vec<Channel> = Vec::new();
    for i in 0..NODES {
        let j = (i + 1) % NODES;
        let ch = Channel::establish(
            &mut mc,
            i,
            pids[i],
            j,
            pids[j],
            VirtAddr::new(0x40_0000),
            VirtAddr::new(0x10_0000 + i as u64 * 0x1_0000),
            2,
        )
        .unwrap();
        channels.push(ch);
    }

    let mut token = vec![0u8; 8];
    channels[0].send(&mut mc, &token).unwrap();
    let mut at = 1usize;
    let mut hop_times = Vec::new();
    for _ in 0..(3 * NODES - 1) {
        let from = (at + NODES - 1) % NODES;
        let msg = channels[from].try_recv(&mut mc).unwrap().expect("token must have arrived");
        hop_times.push(mc.node(at).os().machine().now());
        token = msg.data;
        token.push(at as u8);
        channels[at].send(&mut mc, &token).unwrap();
        at = (at + 1) % NODES;
    }
    let last = channels[(at + NODES - 1) % NODES].try_recv(&mut mc).unwrap().expect("final token");

    // Byte-identical receiver memory: the token recorded every hop.
    let mut expected = vec![0u8; 8];
    expected.extend((0..3 * NODES - 1).map(|h| ((h + 1) % NODES) as u8));
    assert_eq!(last.data, expected);

    // Identical simulated timeline, hop by hop.
    let golden: Vec<SimTime> =
        RING_HOP_TIMES_NS.iter().map(|&ns| SimTime::from_nanos(ns)).collect();
    assert_eq!(hop_times, golden, "simulated hop times must match the seed");
    for (i, &ns) in RING_FINAL_NODE_TIMES_NS.iter().enumerate() {
        assert_eq!(
            mc.node(i).os().machine().now(),
            SimTime::from_nanos(ns),
            "node {i} final clock must match the seed"
        );
    }
}

#[test]
fn deliberate_update_stream_matches_seed_memory_and_clocks() {
    let mut mc = Multicomputer::with_machine_config(2, MachineConfig::default());
    let sender = mc.spawn_process(0);
    let receiver = mc.spawn_process(1);
    let msg_bytes: u64 = 4096;
    let pages = msg_bytes.div_ceil(PAGE_SIZE).max(1) + 1;
    mc.map_user_buffer(0, sender, 0x10_0000, pages).unwrap();
    mc.map_user_buffer(1, receiver, 0x40_0000, pages).unwrap();
    let dev_page = mc.export(1, receiver, VirtAddr::new(0x40_0000), pages, 0, sender).unwrap();

    for k in 0..50u64 {
        let payload: Vec<u8> = (0..msg_bytes).map(|i| ((i * 31 + k * 7) % 251) as u8).collect();
        mc.write_user(0, sender, VirtAddr::new(0x10_0000), &payload).unwrap();
        mc.send(0, sender, VirtAddr::new(0x10_0000), dev_page, 0, msg_bytes).unwrap();
        mc.run_until_quiet();
        // Byte-identical receiver memory after every message.
        let got = mc.read_user(1, receiver, VirtAddr::new(0x40_0000), msg_bytes).unwrap();
        assert_eq!(got, payload, "message {k}: receiver memory differs from sent payload");
    }

    assert_eq!(mc.node(0).os().machine().now(), SimTime::from_nanos(STREAM_FINAL_TIMES_NS.0));
    assert_eq!(mc.node(1).os().machine().now(), SimTime::from_nanos(STREAM_FINAL_TIMES_NS.1));
    assert_eq!(mc.fabric().stats().get("packets"), 50);
    assert_eq!(mc.fabric().stats().get("payload_bytes"), 50 * msg_bytes);
}

/// Builds the pure 50-message stream machine and its plan.
fn plan_stream() -> (Multicomputer, Vec<shrimp::NodePlan>) {
    let mut mc = Multicomputer::with_machine_config(2, MachineConfig::default());
    let sender = mc.spawn_process(0);
    let receiver = mc.spawn_process(1);
    let msg_bytes: u64 = 4096;
    let pages = msg_bytes.div_ceil(PAGE_SIZE).max(1) + 1;
    mc.map_user_buffer(0, sender, 0x10_0000, pages).unwrap();
    mc.map_user_buffer(1, receiver, 0x40_0000, pages).unwrap();
    let dev_page = mc.export(1, receiver, VirtAddr::new(0x40_0000), pages, 0, sender).unwrap();
    let payload: Vec<u8> = (0..msg_bytes).map(|i| ((i * 31) % 251) as u8).collect();
    mc.write_user(0, sender, VirtAddr::new(0x10_0000), &payload).unwrap();
    let plans = vec![shrimp::NodePlan {
        node: 0,
        ops: vec![
            shrimp::SendOp {
                pid: sender,
                src_va: VirtAddr::new(0x10_0000),
                dev_page,
                dev_off: 0,
                nbytes: msg_bytes,
                class: shrimp::PacketClass::User,
            };
            50
        ],
    }];
    (mc, plans)
}

#[test]
fn serial_plan_stream_matches_pinned_timeline() {
    let (mut mc, plans) = plan_stream();
    for op in &plans[0].ops {
        mc.send(0, op.pid, op.src_va, op.dev_page, op.dev_off, op.nbytes).unwrap();
    }
    mc.run_until_quiet();
    assert_eq!(mc.node(0).os().machine().now(), SimTime::from_nanos(PLAN_STREAM_FINAL_TIMES_NS.0));
    assert_eq!(mc.node(1).os().machine().now(), SimTime::from_nanos(PLAN_STREAM_FINAL_TIMES_NS.1));
    assert_eq!(mc.state_digest(), PLAN_STREAM_DIGEST);
}

#[test]
fn parallel_plan_stream_matches_pinned_timeline() {
    for threads in [1usize, 2] {
        let (mut mc, plans) = plan_stream();
        mc.run(&plans, threads).unwrap();
        assert_eq!(
            mc.node(0).os().machine().now(),
            SimTime::from_nanos(PLAN_STREAM_FINAL_TIMES_NS.0),
            "threads={threads}"
        );
        assert_eq!(
            mc.node(1).os().machine().now(),
            SimTime::from_nanos(PLAN_STREAM_FINAL_TIMES_NS.1),
            "threads={threads}"
        );
        assert_eq!(mc.state_digest(), PLAN_STREAM_DIGEST, "threads={threads}");
    }
}

// ---------------------------------------------------------------------
// Pooled buffers never alias in-flight packets.
// ---------------------------------------------------------------------

proptest! {
    /// Two independent sender→receiver pairs stream concurrently with
    /// per-message fill patterns. Packets from both pairs are in flight
    /// together and payload buffers recycle through each NIC's pool; if a
    /// recycled buffer were ever handed out while still referenced by an
    /// in-flight packet, one stream's bytes would surface in the other's
    /// receiver memory.
    #[test]
    fn pooled_buffers_never_alias_in_flight_packets(
        msgs in 2u64..12,
        size_sel in 0usize..4,
        seed in 0u64..1024,
    ) {
        let sizes = [64u64, 256, 1024, 4096];
        let msg_bytes = sizes[size_sel];
        let mut mc = Multicomputer::with_machine_config(4, MachineConfig::default());
        let pairs = [(0usize, 1usize), (2, 3)];
        let mut ends = Vec::new();
        for &(s, r) in &pairs {
            let sp = mc.spawn_process(s);
            let rp = mc.spawn_process(r);
            let pages = msg_bytes.div_ceil(PAGE_SIZE).max(1) + 1;
            mc.map_user_buffer(s, sp, 0x10_0000, pages).unwrap();
            mc.map_user_buffer(r, rp, 0x40_0000, pages).unwrap();
            let dev = mc.export(r, rp, VirtAddr::new(0x40_0000), pages, s, sp).unwrap();
            ends.push((s, sp, r, rp, dev));
        }

        // Interleave the two streams without draining, so packets from
        // both coexist in the NIC queues and the fabric.
        let pattern = |pair: usize, k: u64, i: u64| -> u8 {
            ((i * 31 + k * 7 + seed + pair as u64 * 101) % 251) as u8
        };
        for k in 0..msgs {
            for (pair, &(s, sp, _r, _rp, dev)) in ends.iter().enumerate() {
                let payload: Vec<u8> =
                    (0..msg_bytes).map(|i| pattern(pair, k, i)).collect();
                mc.write_user(s, sp, VirtAddr::new(0x10_0000), &payload).unwrap();
                mc.send(s, sp, VirtAddr::new(0x10_0000), dev, 0, msg_bytes).unwrap();
            }
        }
        mc.run_until_quiet();

        // Buffers were actually recycled (the property is vacuous
        // otherwise): after the drain each sender NIC's pool holds the
        // returned buffers.
        for &(s, ..) in &ends {
            prop_assert!(
                mc.node(s).os().machine().device().buf_pool().free_buffers() > 0,
                "sender {s}: pool never recycled a buffer"
            );
        }

        // Each receiver holds exactly its own stream's final message.
        for (pair, &(_s, _sp, r, rp, _dev)) in ends.iter().enumerate() {
            let got = mc.read_user(r, rp, VirtAddr::new(0x40_0000), msg_bytes).unwrap();
            let want: Vec<u8> =
                (0..msg_bytes).map(|i| pattern(pair, msgs - 1, i)).collect();
            prop_assert_eq!(&got, &want, "receiver {} saw foreign or stale bytes", r);
        }
    }
}
