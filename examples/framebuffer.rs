//! UDMA with a memory-mapped graphics device (paper §1/§4: "if the device
//! is a graphics frame-buffer, a device address might specify a pixel").
//!
//! A user process renders a gradient into its own memory and blits it to
//! the frame buffer row by row with user-level DMA, then reads a region
//! back. Each device proxy page covers 4096 pixels of the framebuffer.
//!
//! Run: `cargo run -p shrimp --example framebuffer`

use shrimp_devices::FrameBuffer;
use shrimp_machine::MachineConfig;
use shrimp_mem::{VirtAddr, PAGE_SIZE};
use shrimp_os::{Node, NodeConfig, Trap};

const WIDTH: u64 = 256;
const HEIGHT: u64 = 128;

fn main() -> Result<(), Trap> {
    let fb = FrameBuffer::new("fb0", WIDTH, HEIGHT);
    let config = NodeConfig {
        machine: MachineConfig { mem_bytes: 256 * PAGE_SIZE, ..MachineConfig::default() },
        user_frames: None,
    };
    let mut node = Node::new(config, fb);
    let pid = node.spawn();

    // Map a render buffer and get grants covering the whole framebuffer.
    let fb_pages = (WIDTH * HEIGHT).div_ceil(PAGE_SIZE);
    node.mmap(pid, 0x10_0000, fb_pages + 1, true)?;
    node.grant_device_proxy(pid, 0, fb_pages, true)?;

    // Render a diagonal gradient in user memory.
    let frame: Vec<u8> =
        (0..HEIGHT).flat_map(|y| (0..WIDTH).map(move |x| ((x + y) & 0xff) as u8)).collect();
    node.write_user(pid, VirtAddr::new(0x10_0000), &frame)?;

    // Blit the whole frame: one UDMA call; the library splits per page.
    let blit = node.udma_send(pid, VirtAddr::new(0x10_0000), 0, 0, frame.len() as u64)?;
    println!(
        "blit {}x{} ({} bytes): {} in {} transfers, {} retries",
        WIDTH, HEIGHT, blit.bytes, blit.elapsed, blit.transfers, blit.retries
    );

    // Verify a few pixels straight on the device.
    let fb = node.machine().device();
    assert_eq!(fb.pixel(0, 0), 0);
    assert_eq!(fb.pixel(10, 5), 15);
    assert_eq!(fb.pixel(255, 127), ((255 + 127) & 0xff) as u8);
    println!("device checksum: {:#x}", fb.checksum());

    // Read a 64-byte scanline segment back into a second buffer: the
    // framebuffer is also a DMA *source* (device-to-memory UDMA).
    let row = 7u64;
    let dev_byte = row * WIDTH; // pixel offset of row start
    let recv = node.udma_recv(
        pid,
        VirtAddr::new(0x10_0000 + fb_pages * PAGE_SIZE),
        dev_byte / PAGE_SIZE,
        dev_byte % PAGE_SIZE,
        64,
    )?;
    let got = node.read_user(pid, VirtAddr::new(0x10_0000 + fb_pages * PAGE_SIZE), 64)?;
    assert_eq!(&got[..], &frame[(row * WIDTH) as usize..(row * WIDTH) as usize + 64]);
    println!("readback of row {row}: {} bytes in {}", recv.bytes, recv.elapsed);

    println!("fb stats: {}", node.machine().device().stats());
    Ok(())
}
