//! Protection under multiprogramming: "a UDMA device can be used
//! concurrently by an arbitrary number of untrusting processes without
//! compromising protection" (§1).
//!
//! The original version of this demo drove one node's device registers by
//! hand through the scheduler. This version rides the reactive program
//! layer instead: two untrusting tenant processes on node 0 are
//! multiplexed by a single custom [`TrafficProgram`] (a closed-loop mux
//! that makes the kernel context-switch to the issuing process on every
//! send), their requests are echoed by a stock [`RpcServerProgram`] on
//! node 1, and one tenant travels the §7 system-priority class while the
//! other stays user-priority. The protection demos are unchanged in
//! spirit and still hit the raw kernel API:
//!   - a process *without* a device grant being stopped by the MMU,
//!   - a process trying to name another process's memory being stopped
//!     because it cannot map the victim's proxy pages.
//!
//! Run: `cargo run -p shrimp --example multiprocess`

use std::any::Any;

use shrimp::{
    DeliveryEvent, Multicomputer, MulticomputerConfig, PacketClass, ProgramPlan, RpcServerProgram,
    SendOp, ShrimpNode, TrafficProgram,
};
use shrimp_mem::{VirtAddr, DEV_PROXY_BASE, PAGE_SIZE};
use shrimp_os::{Pid, Trap};

const SRC_VA: u64 = 0x10_0000;
const WIN_VA: u64 = 0x40_0000;
const MSG_BYTES: u64 = 256;
const PER_TENANT: u32 = 20;

/// One untrusting sender sharing the node's UDMA device.
struct Tenant {
    pid: Pid,
    /// Device proxy page addressing its window on the server node.
    dev_page: u64,
    /// Where the server's echo lands in this node's physical memory.
    reply_paddr: shrimp_mem::PhysAddr,
    class: PacketClass,
    remaining: u32,
}

/// A closed-loop multi-process mux: round-robins its tenants with one
/// request outstanding machine-wide. Every emitted [`SendOp`] names a
/// different process, so the engine's send pump context-switches the node
/// (firing the I1 Inval) between untrusting address spaces on every send
/// — the multiprogramming workout, expressed as a program.
struct TenantMux {
    tenants: Vec<Tenant>,
    next: usize,
    /// Tenant index whose request is awaiting its echo.
    in_flight: Option<usize>,
    completed: u64,
}

impl TrafficProgram for TenantMux {
    fn planned_hint(&self) -> usize {
        let total: usize = self.tenants.iter().map(|t| t.remaining as usize).sum();
        total.saturating_sub(1)
    }

    fn step(
        &mut self,
        _node: &mut ShrimpNode,
        inbox: &[DeliveryEvent],
        out: &mut Vec<SendOp>,
    ) -> Result<(), Trap> {
        if let Some(t) = self.in_flight {
            if inbox.iter().any(|ev| ev.dst_paddr == self.tenants[t].reply_paddr) {
                self.in_flight = None;
                self.completed += 1;
            }
        }
        if self.in_flight.is_some() {
            return Ok(());
        }
        for off in 0..self.tenants.len() {
            let i = (self.next + off) % self.tenants.len();
            if self.tenants[i].remaining == 0 {
                continue;
            }
            let t = &mut self.tenants[i];
            t.remaining -= 1;
            out.push(SendOp {
                pid: t.pid,
                src_va: VirtAddr::new(SRC_VA),
                dev_page: t.dev_page,
                dev_off: 0,
                nbytes: MSG_BYTES,
                class: t.class,
            });
            self.in_flight = Some(i);
            self.next = (i + 1) % self.tenants.len();
            break;
        }
        Ok(())
    }

    fn finished(&self) -> bool {
        self.in_flight.is_none() && self.tenants.iter().all(|t| t.remaining == 0)
    }

    fn as_any_mut(&mut self) -> &mut dyn Any {
        self
    }
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut mc = Multicomputer::new(2, MulticomputerConfig::default());

    // --- Protection demo 1: no grant, no device access.
    let os = mc.node_mut(0).os_mut();
    let rogue = os.spawn();
    let err = os.user_store(rogue, VirtAddr::new(DEV_PROXY_BASE), 64).unwrap_err();
    println!("rogue store to device proxy without grant: {err}");
    assert!(matches!(err, Trap::DeviceNotGranted { .. }));

    // --- Protection demo 2: cannot name another process's memory.
    let victim = os.spawn();
    os.mmap(victim, 0x5_0000, 1, true)?;
    os.user_store(victim, VirtAddr::new(0x5_0000), 0x5ec2e7)?;
    let victim_proxy =
        os.machine().layout().proxy_of_virt(VirtAddr::new(0x5_0000)).expect("memory region");
    // The rogue references the same *virtual* proxy address, but its own
    // page table has no mapping there and no segment backs it: segfault.
    let err = os.user_load(rogue, victim_proxy).unwrap_err();
    println!("rogue load of victim's proxy page:          {err}");
    assert!(matches!(err, Trap::SegFault { .. }));

    // --- Concurrency demo: two untrusting tenants muxed by one program.
    let server = mc.spawn_process(1);
    mc.map_user_buffer(1, server, SRC_VA, 1)?;
    mc.map_user_buffer(1, server, WIN_VA, 2)?;
    let echo: Vec<u8> = (0..MSG_BYTES).map(|i| ((i * 7) % 239) as u8).collect();
    mc.write_user(1, server, VirtAddr::new(SRC_VA), &echo)?;

    let mut tenants = Vec::new();
    let mut routes = Vec::new();
    let mut req_paddrs = Vec::new();
    for t in 0..2u64 {
        let pid = mc.spawn_process(0);
        mc.map_user_buffer(0, pid, SRC_VA, 1)?;
        mc.map_user_buffer(0, pid, WIN_VA, 1)?;
        mc.write_user(0, pid, VirtAddr::new(SRC_VA), &[t as u8 + 1; MSG_BYTES as usize])?;

        // The tenant's one-page request window on the server node, and
        // the reply window the server echoes back into.
        let req_va = VirtAddr::new(WIN_VA + t * PAGE_SIZE);
        let dev_page = mc.export(1, server, req_va, 1, 0, pid)?;
        let req_paddr = mc.user_paddr(1, server, req_va)?;
        let rep_dev = mc.export(0, pid, VirtAddr::new(WIN_VA), 1, 1, server)?;
        let reply_paddr = mc.user_paddr(0, pid, VirtAddr::new(WIN_VA))?;

        routes.push((
            req_paddr,
            SendOp {
                pid: server,
                src_va: VirtAddr::new(SRC_VA),
                dev_page: rep_dev,
                dev_off: 0,
                nbytes: MSG_BYTES,
                class: PacketClass::System,
            },
        ));
        req_paddrs.push(req_paddr);
        // Tenant 0 rides the §7 system queue, tenant 1 the user queue —
        // both make it through the same arbitrated fabric.
        let class = if t == 0 { PacketClass::System } else { PacketClass::User };
        tenants.push(Tenant { pid, dev_page, reply_paddr, class, remaining: PER_TENANT });
    }
    let pids: Vec<Pid> = tenants.iter().map(|t| t.pid).collect();

    // The server filters deliveries to the span covering both request
    // windows; the exact landing address picks the route.
    let base = *req_paddrs.iter().min_by_key(|p| p.raw()).unwrap();
    let top = req_paddrs.iter().map(|p| p.raw()).max().unwrap() + PAGE_SIZE;
    let expected = 2 * PER_TENANT as usize;
    let mut programs = vec![
        ProgramPlan {
            node: 0,
            program: Box::new(TenantMux { tenants, next: 0, in_flight: None, completed: 0 }),
        },
        ProgramPlan {
            node: 1,
            program: Box::new(RpcServerProgram::new(base, top - base.raw(), routes, expected)),
        },
    ];
    let report = mc.run_programs(&mut programs, 2)?;

    let mux = programs[0]
        .program
        .as_any_mut()
        .downcast_mut::<TenantMux>()
        .expect("mux comes back stepped to its final state");
    println!("\ntwo tenants, one device, closed-loop echo:");
    println!("  requests answered:  {}", mux.completed);
    println!("  fabric messages:    {} (requests + echoes)", report.messages);
    println!("  context switches:   {}", mc.node(0).os().stats().get("context_switches"));
    assert_eq!(mux.completed, u64::from(2 * PER_TENANT), "every request echoed");
    assert_eq!(report.messages, 2 * u64::from(2 * PER_TENANT));

    // Every tenant's reply window holds the echo payload, each tenant's
    // source memory was never touched by the other, and the invariants
    // held through every context switch.
    for pid in pids {
        let got = mc.read_user(0, pid, VirtAddr::new(WIN_VA), MSG_BYTES)?;
        assert_eq!(got, echo, "echo landed in the tenant's own window");
    }
    for node in 0..2 {
        mc.node(node).os().check_invariants().expect("I1-I4 hold");
    }
    println!("  invariants I1-I4:   OK");

    let os = mc.node_mut(0).os_mut();
    assert_eq!(os.user_load(victim, VirtAddr::new(0x5_0000))?, 0x5ec2e7);
    println!("  victim's memory:    untouched");
    Ok(())
}
