//! Protection under multiprogramming: "a UDMA device can be used
//! concurrently by an arbitrary number of untrusting processes without
//! compromising protection" (§1).
//!
//! Three processes share one UDMA device under a harsh scheduler (switch
//! every three memory references, so initiation pairs regularly straddle
//! a switch). The demo shows:
//!   - the I1 context-switch Inval splitting initiation sequences, and the
//!     user-level retry recovering every time,
//!   - a process *without* a device grant being stopped by the MMU,
//!   - a process trying to DMA from another process's memory being stopped
//!     because it cannot map the victim's proxy pages.
//!
//! Run: `cargo run -p shrimp --example multiprocess`

use std::cell::Cell;
use std::rc::Rc;

use shrimp_devices::StreamSink;
use shrimp_mem::{VirtAddr, DEV_PROXY_BASE, PAGE_SIZE};
use shrimp_os::{Driver, Node, NodeConfig, Progress, Trap};
use udma_core::UdmaStatus;

fn main() -> Result<(), Trap> {
    let mut node = Node::new(NodeConfig::default(), StreamSink::new("shared-device"));

    // --- Protection demo 1: no grant, no device access.
    let rogue = node.spawn();
    let err = node.user_store(rogue, VirtAddr::new(DEV_PROXY_BASE), 64).unwrap_err();
    println!("rogue store to device proxy without grant: {err}");
    assert!(matches!(err, Trap::DeviceNotGranted { .. }));

    // --- Protection demo 2: cannot name another process's memory.
    let victim = node.spawn();
    node.mmap(victim, 0x5_0000, 1, true)?;
    node.user_store(victim, VirtAddr::new(0x5_0000), 0x5ec2e7)?;
    let victim_proxy =
        node.machine().layout().proxy_of_virt(VirtAddr::new(0x5_0000)).expect("memory region");
    // The rogue references the same *virtual* proxy address, but its own
    // page table has no mapping there and no segment backs it: segfault.
    let err = node.user_load(rogue, victim_proxy).unwrap_err();
    println!("rogue load of victim's proxy page:          {err}");
    assert!(matches!(err, Trap::SegFault { .. }));

    // --- Concurrency demo: two senders interleaved at every reference.
    let retries = Rc::new(Cell::new(0u64));
    let sent = Rc::new(Cell::new(0u64));
    let mut driver = Driver::new(3);
    for s in 0..2u64 {
        let pid = node.spawn();
        let va = 0x10_0000 + s * PAGE_SIZE;
        node.mmap(pid, va, 1, true)?;
        node.grant_device_proxy(pid, s, 1, true)?;
        node.write_user(pid, VirtAddr::new(va), &[s as u8 + 1; 256])?;
        let vproxy = node.machine().layout().proxy_of_virt(VirtAddr::new(va)).unwrap();
        // Warm proxy mappings so the loop below is pure references.
        node.user_store(pid, vproxy, 1)?;
        node.machine_mut().kernel_inval_udma();

        let vdev = VirtAddr::new(DEV_PROXY_BASE + s * PAGE_SIZE);
        let retries = Rc::clone(&retries);
        let sent = Rc::clone(&sent);
        let mut remaining = 20u32;
        let mut stored = false;
        driver.add(move |n: &mut Node<StreamSink>| {
            if !stored {
                n.user_store(pid, vdev, 256)?;
                stored = true;
                return Ok(Progress::Ready);
            }
            stored = false;
            let status = UdmaStatus::unpack(n.user_load(pid, vproxy)?);
            if status.started() {
                sent.set(sent.get() + 1);
                remaining -= 1;
                return Ok(if remaining == 0 { Progress::Done } else { Progress::Ready });
            }
            if status.should_retry() {
                retries.set(retries.get() + 1);
                if status.transferring {
                    let drained = n.machine().udma_drained_at();
                    n.machine_mut().advance_to(drained);
                }
                return Ok(Progress::Ready);
            }
            Err(Trap::DeviceError { code: status.device_error })
        });
    }
    driver.run(&mut node)?;
    let drained = node.machine().udma_drained_at();
    node.machine_mut().advance_to(drained);

    println!("\ntwo senders, switch every 3 references:");
    println!("  messages delivered: {}", sent.get());
    println!("  initiation retries: {} (I1 Invals + busy device)", retries.get());
    println!("  context switches:   {}", node.stats().get("context_switches"));
    assert_eq!(sent.get(), 40, "every message survives the harsh schedule");
    node.check_invariants().expect("I1-I4 hold");
    println!("  invariants I1-I4:   OK");

    // The victim's data was never touched.
    assert_eq!(node.user_load(victim, VirtAddr::new(0x5_0000))?, 0x5ec2e7);
    println!("  victim's memory:    untouched");
    Ok(())
}
