//! Message passing on the SHRIMP multicomputer (paper §8).
//!
//! Builds a four-node machine, establishes deliberate-update channels, and
//! runs a ring exchange: each node sends a token to its right neighbour,
//! doubling the payload each lap — all communication is user-level UDMA.
//!
//! Run: `cargo run -p shrimp --example message_passing`

use shrimp::{Channel, Multicomputer, ShrimpError};
use shrimp_mem::VirtAddr;

fn main() -> Result<(), ShrimpError> {
    const NODES: usize = 4;
    let mut mc = Multicomputer::new(NODES as u16, Default::default());

    // One process per node; a channel from each node to its right
    // neighbour.
    let pids: Vec<_> = (0..NODES).map(|i| mc.spawn_process(i)).collect();
    let mut channels: Vec<Channel> = Vec::new();
    for i in 0..NODES {
        let j = (i + 1) % NODES;
        let ch = Channel::establish(
            &mut mc,
            i,
            pids[i],
            j,
            pids[j],
            VirtAddr::new(0x40_0000), // receive buffer on node j
            VirtAddr::new(0x10_0000 + i as u64 * 0x1_0000), // staging on node i
            2,
        )?;
        channels.push(ch);
    }

    // Node 0 injects a token; each receiver appends a byte and forwards.
    let mut token = vec![0u8; 8];
    println!("ring of {NODES} nodes, 3 laps:");
    channels[0].send(&mut mc, &token)?;
    let mut hops = 0;
    let mut at = 1usize; // the token is heading to node 1
    while hops < 3 * NODES - 1 {
        // The channel INTO node `at` is the one from its left neighbour.
        let from = (at + NODES - 1) % NODES;
        let msg = channels[from].try_recv(&mut mc)?.expect("token must have arrived");
        println!(
            "  node{at} got seq={} len={} at t={}",
            msg.seq,
            msg.data.len(),
            mc.node(at).os().machine().now()
        );
        token = msg.data;
        token.push(at as u8);
        channels[at].send(&mut mc, &token)?;
        at = (at + 1) % NODES;
        hops += 1;
    }
    let last = channels[(at + NODES - 1) % NODES].try_recv(&mut mc)?.expect("final token");
    println!("final token ({} bytes): {:?}", last.data.len(), last.data);

    // The payload recorded every hop in order.
    let expected: Vec<u8> = (0..3 * NODES - 1).map(|h| ((h + 1) % NODES) as u8).collect();
    assert_eq!(&last.data[8..], &expected[..], "token recorded each hop");

    println!("\nfabric: {}", mc.fabric().stats());
    Ok(())
}
