//! A guided tour of the paper's four OS invariants (§6), demonstrating
//! each one live on a simulated node and printing what the kernel did.
//!
//! Run: `cargo run -p shrimp --example invariants_tour`

use shrimp_devices::StreamSink;
use shrimp_machine::MachineConfig;
use shrimp_mem::{VirtAddr, DEV_PROXY_BASE, PAGE_SIZE};
use shrimp_os::{Node, NodeConfig, Trap};
use shrimp_sim::{CostModel, SimDuration};
use udma_core::UdmaStatus;

fn main() -> Result<(), Trap> {
    // A slow bus (so transfers stay in flight long enough to watch) and a
    // tight memory (so the pager runs).
    let cost = CostModel {
        bus_mb_per_s: 1.0,
        disk_seek: SimDuration::from_us(20.0),
        disk_rotation: SimDuration::from_us(10.0),
        disk_mb_per_s: 500.0,
        ..CostModel::default()
    };
    let config = NodeConfig {
        machine: MachineConfig { mem_bytes: 512 * PAGE_SIZE, cost, ..MachineConfig::default() },
        user_frames: Some(5),
    };
    let mut node = Node::new(config, StreamSink::new("device"));
    node.machine_mut().set_tracing(true);
    let layout = node.machine().layout();

    // ---------------------------------------------------------------
    println!("== I1: atomicity of the two-instruction sequence ==");
    let alice = node.spawn();
    let bob = node.spawn();
    node.mmap(alice, 0x10000, 1, true)?;
    node.mmap(bob, 0x10000, 1, true)?;
    node.grant_device_proxy(alice, 0, 1, true)?;
    node.grant_device_proxy(bob, 1, 1, true)?;
    node.user_store(alice, VirtAddr::new(0x10000), 0xA11CE)?;
    node.user_store(bob, VirtAddr::new(0x10000), 0xB0B)?;

    // Alice STOREs her destination... and is preempted before her LOAD.
    node.user_store(alice, VirtAddr::new(DEV_PROXY_BASE), 256)?;
    node.ensure_current(bob)?; // context switch fires the Inval STORE
    println!("  alice latched a destination; switch to bob fired the I1 Inval");

    // Bob cannot complete Alice's initiation: his LOAD names *his* memory
    // and the latch is gone anyway.
    let bob_proxy = layout.proxy_of_virt(VirtAddr::new(0x10000)).unwrap();
    let status = UdmaStatus::unpack(node.user_load(bob, bob_proxy)?);
    println!("  bob's LOAD sees:  {status}");
    assert!(status.initiation && status.invalid, "no cross-process initiation");

    // Alice retries the whole sequence and succeeds.
    node.user_store(alice, VirtAddr::new(DEV_PROXY_BASE), 256)?;
    let alice_proxy = layout.proxy_of_virt(VirtAddr::new(0x10000)).unwrap();
    let status = UdmaStatus::unpack(node.user_load(alice, alice_proxy)?);
    assert!(status.started());
    println!("  alice's retry:    {status}");
    let drained = node.machine().udma_drained_at();
    node.machine_mut().advance_to(drained);

    // ---------------------------------------------------------------
    println!("\n== I2: proxy mappings die with their real mappings ==");
    let before = node.process(alice)?.pt.get(alice_proxy.page()).is_some();
    println!("  alice's proxy PTE exists: {before}");
    // Thrash memory until alice's page is evicted.
    let crowd = node.spawn();
    node.mmap(crowd, 0x80000, 8, true)?;
    for i in 0..8u64 {
        node.user_store(crowd, VirtAddr::new(0x80000 + i * PAGE_SIZE), 1)?;
    }
    let real_gone = node.process(alice)?.pt.get(VirtAddr::new(0x10000).page()).is_none();
    let proxy_gone = node.process(alice)?.pt.get(alice_proxy.page()).is_none();
    println!("  after eviction: real mapping gone: {real_gone}, proxy mapping gone: {proxy_gone}");
    assert_eq!(real_gone, proxy_gone, "I2: the two mappings live and die together");
    node.check_invariants().expect("I2 holds");

    // ---------------------------------------------------------------
    println!("\n== I3: writable proxy pages imply dirty real pages ==");
    // Touch alice's page back in (read-only access: page is clean).
    let _ = node.user_load(alice, VirtAddr::new(0x10000))?;
    let _ = node.user_load(alice, alice_proxy)?; // proxy recreated read-only
    let pte = *node.process(alice)?.pt.get(alice_proxy.page()).unwrap();
    println!("  clean page -> proxy writable: {}", pte.is_writable());
    assert!(!pte.is_writable());
    // Naming the page as a DMA *destination* write-faults; the kernel
    // dirties the page and enables the proxy.
    node.user_store(alice, alice_proxy, 64)?;
    let pte = *node.process(alice)?.pt.get(alice_proxy.page()).unwrap();
    let real = *node.process(alice)?.pt.get(VirtAddr::new(0x10000).page()).unwrap();
    println!(
        "  after I3 fault  -> proxy writable: {}, page dirty: {}",
        pte.is_writable(),
        real.is_dirty()
    );
    assert!(pte.is_writable() && real.is_dirty());
    node.machine_mut().kernel_inval_udma(); // drop the latched initiation
    node.check_invariants().expect("I3 holds");

    // ---------------------------------------------------------------
    println!("\n== I4: frames named by the hardware are never remapped ==");
    // Start a long (slow-bus) transfer from alice's page...
    node.user_store(alice, VirtAddr::new(DEV_PROXY_BASE), PAGE_SIZE as i64)?;
    let status = UdmaStatus::unpack(node.user_load(alice, alice_proxy)?);
    assert!(status.started());
    let held = node.process(alice)?.vpages[&VirtAddr::new(0x10000).page()].pfn().unwrap();
    println!("  transfer in flight from frame {held}");
    // ...and thrash again: the pager must work around the held frame.
    for i in 0..8u64 {
        node.user_store(crowd, VirtAddr::new(0x80000 + i * PAGE_SIZE), 2)?;
    }
    let still = node.process(alice)?.vpages[&VirtAddr::new(0x10000).page()].pfn();
    println!(
        "  after {} evictions ({} I4 skips): frame still {:?}",
        node.stats().get("evictions"),
        node.stats().get("i4_skips"),
        still
    );
    assert_eq!(still, Some(held), "I4: the frame survived the storm");
    node.check_invariants().expect("I4 holds");

    println!("\nall four invariants demonstrated; kernel stats:\n  {}", node.stats());
    println!("\nlast 8 trace events:");
    for event in node.machine().trace().recent(8) {
        println!("  {event}");
    }
    Ok(())
}
