//! UDMA with a storage device (paper §1/§4: "if the device is a disk, a
//! device address might name a block").
//!
//! A user process writes a record to disk block 7 and reads it back —
//! both directions via user-level DMA, no system call on the data path —
//! then compares against the traditional syscall path on the same node.
//!
//! Run: `cargo run -p shrimp --example disk_io`

use shrimp_devices::{Disk, DiskGeometry};
use shrimp_machine::MachineConfig;
use shrimp_mem::{VirtAddr, PAGE_SIZE};
use shrimp_os::{DmaStrategy, Node, NodeConfig, Trap};

fn main() -> Result<(), Trap> {
    let disk = Disk::new("disk0", DiskGeometry { blocks: 64, ..DiskGeometry::default() });
    let config = NodeConfig {
        machine: MachineConfig { mem_bytes: 256 * PAGE_SIZE, ..MachineConfig::default() },
        user_frames: None,
    };
    let mut node = Node::new(config, disk);
    let pid = node.spawn();

    // Two user pages: one to write from, one to read into. Device proxy
    // page k = disk block k; we get a grant for blocks 0..16.
    node.mmap(pid, 0x1_0000, 2, true)?;
    node.grant_device_proxy(pid, 0, 16, true)?;

    let record = b"block 7: user-level disk DMA record ...".repeat(8);
    node.write_user(pid, VirtAddr::new(0x1_0000), &record)?;

    // Write memory -> disk block 7 (destination = device proxy page 7).
    let w = node.udma_send(pid, VirtAddr::new(0x1_0000), 7, 0, record.len() as u64)?;
    println!("disk write: {} bytes in {} ({} transfers)", w.bytes, w.elapsed, w.transfers);
    assert_eq!(&node.machine().device().block(7)[..record.len()], &record[..]);

    // Read disk block 7 -> memory (source = device proxy page 7).
    let r = node.udma_recv(pid, VirtAddr::new(0x2_000 * 8), 7, 0, record.len() as u64)?;
    println!("disk read:  {} bytes in {} ({} transfers)", r.bytes, r.elapsed, r.transfers);
    let got = node.read_user(pid, VirtAddr::new(0x2_000 * 8), record.len() as u64)?;
    assert_eq!(got, record);

    // The same write through the traditional kernel path, for contrast.
    let k = node.sys_dma_to_device(
        pid,
        VirtAddr::new(0x1_0000),
        7 * PAGE_SIZE,
        record.len() as u64,
        DmaStrategy::PinPages,
    )?;
    println!("kernel DMA: {} bytes in {} ({} pages pinned)", k.bytes, k.elapsed, k.pages);
    println!(
        "\nmechanical service dominates both ({} seek), but the software overhead\n\
         difference is what the paper is about: udma {} vs kernel {}",
        node.machine().device().geometry().seek,
        w.elapsed,
        k.elapsed
    );
    println!("\ndisk stats: {}", node.machine().device().stats());
    Ok(())
}
