//! UDMA with a sequential device: streaming a backup to tape.
//!
//! §1 lists "data storage devices such as disks and tape drives" among
//! UDMA's targets. Tape rewards exactly what the queued UDMA device
//! provides: a steady stream of back-to-back transfers keeps the drive
//! streaming, while any gap (or a random reposition) costs a start/stop
//! penalty plus winding time.
//!
//! Run: `cargo run -p shrimp --example tape_backup`

use shrimp_devices::{Tape, TapeGeometry};
use shrimp_machine::{MachineConfig, UdmaMode};
use shrimp_mem::{VirtAddr, PAGE_SIZE};
use shrimp_os::{Node, NodeConfig, Trap};

fn main() -> Result<(), Trap> {
    const ARCHIVE_PAGES: u64 = 16;

    let tape = Tape::new("tape0", TapeGeometry::default());
    let config = NodeConfig {
        machine: MachineConfig {
            mem_bytes: 256 * PAGE_SIZE,
            // The §7 queueing device: two references per page, no gaps.
            udma: UdmaMode::Queued(32),
            ..MachineConfig::default()
        },
        user_frames: None,
    };
    let mut node = Node::new(config, tape);
    let pid = node.spawn();

    // An archive buffer and grants covering its tape extent.
    node.mmap(pid, 0x10_0000, ARCHIVE_PAGES, true)?;
    node.grant_device_proxy(pid, 0, ARCHIVE_PAGES + 64, true)?;
    let archive: Vec<u8> = (0..ARCHIVE_PAGES * PAGE_SIZE).map(|i| (i * 131 % 251) as u8).collect();
    node.write_user(pid, VirtAddr::new(0x10_0000), &archive)?;

    // Stream the whole archive: one multi-page queued UDMA send.
    let r = node.udma_send(pid, VirtAddr::new(0x10_0000), 0, 0, archive.len() as u64)?;
    println!(
        "streamed {} KB to tape in {} ({} transfers, {} retries)",
        r.bytes / 1024,
        r.elapsed,
        r.transfers,
        r.retries
    );
    assert_eq!(r.retries, 0, "the queue keeps the drive streaming");
    assert_eq!(&node.machine().device().dma_read_check(0, 64), &archive[..64]);

    // Verify by reading a random record back: one reposition, then stream.
    let record_page = 11u64;
    let rd = node.udma_recv(pid, VirtAddr::new(0x10_0000), record_page, 0, PAGE_SIZE)?;
    println!("random restore of page {record_page}: {}", rd.elapsed);
    let got = node.read_user(pid, VirtAddr::new(0x10_0000), PAGE_SIZE)?;
    assert_eq!(
        got,
        &archive[(record_page * PAGE_SIZE) as usize..((record_page + 1) * PAGE_SIZE) as usize]
    );

    // Sequential restore of the next page is far cheaper (head in place).
    let rd2 = node.udma_recv(pid, VirtAddr::new(0x10_0000), record_page + 1, 0, PAGE_SIZE)?;
    println!("sequential restore of page {}: {}", record_page + 1, rd2.elapsed);
    assert!(rd2.elapsed < rd.elapsed, "streaming must beat repositioning");

    println!("\ntape stats: {}", node.machine().device().stats());
    Ok(())
}

/// Small helper so the example can peek at tape contents without timing.
trait TapePeek {
    fn dma_read_check(&self, pos: u64, len: usize) -> Vec<u8>;
}

impl TapePeek for Tape {
    fn dma_read_check(&self, pos: u64, len: usize) -> Vec<u8> {
        // Reading via the Device trait would move the head; clone instead.
        let mut copy = self.clone();
        shrimp_dma::DevicePort::dma_read_vec(&mut copy, pos, len as u64, shrimp_sim::SimTime::ZERO)
    }
}
