//! Quickstart: the UDMA mechanism in five minutes.
//!
//! Boots a single simulated node whose UDMA device is a stream sink,
//! walks through the paper's two-instruction initiation sequence at the
//! lowest level (raw proxy references), and then uses the user-level
//! library for a whole-message transfer.
//!
//! Run: `cargo run -p shrimp --example quickstart`

use shrimp_devices::StreamSink;
use shrimp_mem::{VirtAddr, DEV_PROXY_BASE, PAGE_SIZE};
use shrimp_os::{Node, NodeConfig, Trap};
use udma_core::UdmaStatus;

fn main() -> Result<(), Trap> {
    // 1. Boot a node: machine (CPU + MMU + UDMA hardware) + kernel.
    let mut node = Node::new(NodeConfig::default(), StreamSink::new("sink"));
    let pid = node.spawn();

    // 2. Map one page of user memory and get a device-proxy grant from the
    //    kernel (the only system calls in this whole program).
    node.mmap(pid, 0x1_0000, 1, true)?;
    node.grant_device_proxy(pid, 0, 1, true)?;

    // 3. Fill the buffer like any user program would.
    node.write_user(pid, VirtAddr::new(0x1_0000), b"hello, user-level DMA!!!")?;

    // 4. The two-instruction initiation sequence, by hand:
    //        STORE nbytes TO   PROXY(dest)   ; device proxy page 0
    //        LOAD  status FROM PROXY(src)    ; memory proxy of our buffer
    let vdev = VirtAddr::new(DEV_PROXY_BASE);
    let vproxy = node
        .machine()
        .layout()
        .proxy_of_virt(VirtAddr::new(0x1_0000))
        .expect("buffer lives in the ordinary-memory region");

    // The first initiation is cold: the references page-fault and the
    // kernel builds the proxy mappings on demand (§6's three cases).
    let t0 = node.machine().now();
    node.user_store(pid, vdev, 24)?; // destination + byte count
    let status = UdmaStatus::unpack(node.user_load(pid, vproxy)?); // source + go
    let cold = node.machine().now() - t0;
    println!("initiation status: {status}");
    println!("cold initiation:   {cold} (page faults build the proxy mappings)");
    assert!(status.started());

    // 5. Poll for completion by repeating the LOAD (MATCH flag clears).
    loop {
        let s = UdmaStatus::unpack(node.user_load(pid, vproxy)?);
        if !s.matches {
            break;
        }
        let drained = node.machine().udma_drained_at();
        node.machine_mut().advance_to(drained);
    }
    println!(
        "device received:   {:?}",
        String::from_utf8_lossy(&node.machine().device().writes()[0].1)
    );

    // Steady state: the mappings exist, so the sequence is two uncached
    // references + the user-level check — the paper's 2.8us figure.
    let check = node.machine().cost().udma_user_check;
    let t0 = node.machine().now();
    node.machine_mut().advance(check); // the §8 alignment check
    node.user_store(pid, vdev, 24)?;
    let status = UdmaStatus::unpack(node.user_load(pid, vproxy)?);
    let warm = node.machine().now() - t0;
    assert!(status.started());
    println!("warm initiation:   {warm} (paper: ~2.8us incl. checks)");
    loop {
        let s = UdmaStatus::unpack(node.user_load(pid, vproxy)?);
        if !s.matches {
            break;
        }
        let drained = node.machine().udma_drained_at();
        node.machine_mut().advance_to(drained);
    }

    // 6. The user-level library does all of the above (plus page-boundary
    //    splitting and retry) in one call.
    let data = vec![0x42u8; 2 * PAGE_SIZE as usize];
    node.mmap(pid, 0x2_0000, 3, true)?;
    node.grant_device_proxy(pid, 1, 3, true)?;
    node.write_user(pid, VirtAddr::new(0x2_0000), &data)?;
    let r = node.udma_send(pid, VirtAddr::new(0x2_0000), 1, 0, data.len() as u64)?;
    println!(
        "library send:      {} bytes in {} ({} transfers, {} retries)",
        r.bytes, r.elapsed, r.transfers, r.retries
    );

    println!("\nkernel stats: {}", node.stats());
    Ok(())
}
